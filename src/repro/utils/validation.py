"""Input validation helpers modelled after scikit-learn's ``check_array``.

Every estimator in the library funnels raw user input through these
functions, so error behaviour (shape, dtype, NaN handling) is uniform
across detectors, projectors, and regressors.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_array",
    "check_consistent_length",
    "check_is_fitted",
    "column_or_1d",
    "check_scalar",
]


def check_array(
    X,
    *,
    dtype=np.float64,
    ensure_2d: bool = True,
    allow_nd: bool = False,
    ensure_min_samples: int = 1,
    ensure_min_features: int = 1,
    force_finite: bool = True,
    copy: bool = False,
    name: str = "X",
) -> np.ndarray:
    """Validate and convert ``X`` to a well-formed ndarray.

    Parameters
    ----------
    X : array-like
        Input to validate.
    dtype : numpy dtype, default float64
        Target dtype. ``None`` preserves the input dtype.
    ensure_2d : bool
        If True, a 1-D input raises instead of being promoted.
    allow_nd : bool
        Allow ndim > 2.
    ensure_min_samples, ensure_min_features : int
        Minimum required shape along each axis (2-D inputs only).
    force_finite : bool
        Reject NaN / inf values.
    copy : bool
        Force a copy even when no conversion is needed.
    name : str
        Name used in error messages.

    Returns
    -------
    ndarray
        Validated array.
    """
    # order="C" pins the memory layout at the input boundary: NumPy's
    # pairwise summation order follows layout, so letting a caller's
    # Fortran-ordered X through would make every downstream axis
    # reduction (var, mean, einsum paths) bitwise-different from the
    # same values in C order. asarray with order="C" copies only when
    # the input is not already C-contiguous.
    arr = (
        np.array(X, dtype=dtype, copy=copy, order="C")
        if copy
        else np.asarray(X, dtype=dtype, order="C")
    )

    if arr.ndim == 0:
        raise ValueError(f"{name} must be array-like, got a scalar: {X!r}")
    if arr.ndim == 1 and ensure_2d:
        raise ValueError(
            f"{name} must be 2-dimensional, got shape {arr.shape}. "
            "Reshape with X.reshape(-1, 1) for a single feature or "
            "X.reshape(1, -1) for a single sample."
        )
    if arr.ndim > 2 and not allow_nd:
        raise ValueError(f"{name} must be at most 2-dimensional, got shape {arr.shape}")

    if force_finite and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinity.")

    if arr.ndim == 2:
        n_samples, n_features = arr.shape
        if n_samples < ensure_min_samples:
            raise ValueError(
                f"{name} has {n_samples} sample(s) but a minimum of "
                f"{ensure_min_samples} is required."
            )
        if n_features < ensure_min_features:
            raise ValueError(
                f"{name} has {n_features} feature(s) but a minimum of "
                f"{ensure_min_features} is required."
            )
    elif arr.ndim == 1 and arr.shape[0] < ensure_min_samples:
        raise ValueError(
            f"{name} has {arr.shape[0]} sample(s) but a minimum of "
            f"{ensure_min_samples} is required."
        )
    return arr


def check_consistent_length(*arrays) -> None:
    """Raise if the given arrays do not share the same first dimension."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"Inconsistent sample counts: {lengths}")


def check_is_fitted(estimator, attributes=None) -> None:
    """Raise ``NotFittedError`` unless the estimator carries fitted state.

    Follows the scikit-learn convention: fitted attributes end with an
    underscore. ``attributes`` may name specific attributes to check.
    """
    if attributes is None:
        fitted = [
            a
            for a in vars(estimator)
            if a.endswith("_") and not a.startswith("__")
        ]
        if fitted:
            return
    else:
        if isinstance(attributes, str):
            attributes = [attributes]
        if all(hasattr(estimator, a) for a in attributes):
            return
    raise NotFittedError(
        f"This {type(estimator).__name__} instance is not fitted yet. "
        "Call 'fit' before using this estimator."
    )


class NotFittedError(ValueError, AttributeError):
    """Raised when an estimator is used before ``fit``."""


def column_or_1d(y, *, name: str = "y") -> np.ndarray:
    """Ravel a column vector or 1-D array; reject anything wider."""
    y = np.asarray(y, order="C")
    if y.ndim == 1:
        return y
    if y.ndim == 2 and y.shape[1] == 1:
        return y.ravel()
    raise ValueError(f"{name} must be 1-dimensional, got shape {y.shape}")


def check_scalar(
    value,
    name: str,
    *,
    target_type=numbers.Real,
    min_val=None,
    max_val=None,
    include_boundaries: str = "both",
):
    """Validate a scalar hyperparameter and return it.

    ``include_boundaries`` is one of ``"both"``, ``"left"``, ``"right"``,
    ``"neither"``.
    """
    if isinstance(value, bool) and target_type is not bool:
        raise TypeError(f"{name} must be {target_type}, got bool")
    if not isinstance(value, target_type):
        raise TypeError(
            f"{name} must be an instance of {target_type}, got {type(value)}"
        )

    left_ok = {
        "both": np.greater_equal,
        "left": np.greater_equal,
        "right": np.greater,
        "neither": np.greater,
    }
    right_ok = {
        "both": np.less_equal,
        "right": np.less_equal,
        "left": np.less,
        "neither": np.less,
    }
    if include_boundaries not in left_ok:
        raise ValueError(f"Unknown boundary spec: {include_boundaries!r}")
    if min_val is not None and not left_ok[include_boundaries](value, min_val):
        raise ValueError(
            f"{name} == {value}, must be >= {min_val} ({include_boundaries})"
        )
    if max_val is not None and not right_ok[include_boundaries](value, max_val):
        raise ValueError(
            f"{name} == {value}, must be <= {max_val} ({include_boundaries})"
        )
    return value
