"""Clustering substrate (k-means), required by the CBLOF detector."""

from repro.cluster.kmeans import KMeans

__all__ = ["KMeans"]
