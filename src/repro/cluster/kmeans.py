"""Lloyd's k-means with k-means++ initialisation.

Built for :class:`repro.detectors.CBLOF`, which clusters the training set
before scoring points by their distance to large-cluster centroids.
Vectorised assignment via the squared-distance identity; empty clusters
are re-seeded from the points farthest from their centroid.
"""

from __future__ import annotations

import numpy as np

from repro.utils.distances import pairwise_distances
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["KMeans"]


def _kmeans_plusplus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: iteratively sample centers ∝ squared distance."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    centers[0] = X[rng.integers(n)]
    closest_sq = pairwise_distances(X, centers[:1], metric="sqeuclidean").ravel()
    for c in range(1, k):
        total = closest_sq.sum()
        # repro: allow[float-equality] -- sum of squared distances is exactly 0.0 iff every point coincides with a center
        if total == 0.0:  # all points coincide with chosen centers
            centers[c:] = X[rng.integers(n, size=k - c)]
            break
        probs = closest_sq / total
        centers[c] = X[rng.choice(n, p=probs)]
        new_sq = pairwise_distances(X, centers[c : c + 1], metric="sqeuclidean").ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


class KMeans:
    """Standard k-means clustering.

    Parameters
    ----------
    n_clusters : int, default 8
    n_init : int, default 3
        Restarts; the inertia-best run is kept.
    max_iter : int, default 100
    tol : float, default 1e-4
        Relative center-shift tolerance for convergence.
    random_state : seed or Generator.

    Attributes
    ----------
    cluster_centers_ : (k, d) array
    labels_ : (n,) int array
    inertia_ : float, sum of squared distances to assigned centers
    n_iter_ : int, iterations of the best run
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 3,
        max_iter: int = 100,
        tol: float = 1e-4,
        random_state=None,
    ):
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, X) -> "KMeans":
        X = check_array(X, name="X")
        n = X.shape[0]
        k = self.n_clusters
        if not 1 <= k <= n:
            raise ValueError(f"n_clusters={k} out of [1, {n}]")
        if self.n_init < 1 or self.max_iter < 1:
            raise ValueError("n_init and max_iter must be >= 1")
        rng = check_random_state(self.random_state)

        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        self.n_features_in_ = X.shape[1]
        return self

    def _single_run(self, X: np.ndarray, rng: np.random.Generator):
        k = self.n_clusters
        centers = _kmeans_plusplus(X, k, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for it in range(1, self.max_iter + 1):
            D = pairwise_distances(X, centers, metric="sqeuclidean")
            labels = np.argmin(D, axis=1)
            new_centers = centers.copy()
            counts = np.bincount(labels, minlength=k)
            for c in range(k):
                if counts[c] > 0:
                    new_centers[c] = X[labels == c].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = int(np.argmax(D[np.arange(X.shape[0]), labels]))
                    new_centers[c] = X[worst]
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            scale = float((centers**2).sum()) or 1.0
            if shift / scale <= self.tol**2:
                break
        D = pairwise_distances(X, centers, metric="sqeuclidean")
        labels = np.argmin(D, axis=1)
        inertia = float(D[np.arange(X.shape[0]), labels].sum())
        return centers, labels, inertia, it

    def predict(self, X) -> np.ndarray:
        """Index of the nearest cluster center for each sample."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X, name="X")
        D = pairwise_distances(X, self.cluster_centers_, metric="sqeuclidean")
        return np.argmin(D, axis=1)

    def transform(self, X) -> np.ndarray:
        """Euclidean distance of each sample to every cluster center."""
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X, name="X")
        return pairwise_distances(X, self.cluster_centers_, metric="euclidean")
