"""repro — from-scratch reproduction of SUOD (MLSys 2021).

Top-level package. The headline entry point is :class:`repro.SUOD`; the
subpackages provide the full substrate (detectors, projections,
supervised approximators, scheduling, parallel backends, metrics, data).
"""

__version__ = "1.0.0"

from repro.core import SUOD  # noqa: F401  (public headline API)
from repro.utils.persistence import (  # noqa: F401
    load_ensemble,
    save_ensemble,
)

__all__ = ["SUOD", "save_ensemble", "load_ensemble", "__version__"]
