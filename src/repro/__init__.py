"""repro — from-scratch reproduction of SUOD (MLSys 2021).

Top-level package. The headline entry point is :class:`repro.SUOD`; the
subpackages provide the full substrate (detectors, projections,
supervised approximators, scheduling, parallel backends, metrics, data).
"""

__version__ = "1.0.0"

from repro.core import SUOD  # noqa: F401  (public headline API)

__all__ = ["SUOD", "__version__"]
