"""Deprecated shim — cost forecasting moved to :mod:`repro.scheduling`.

Kept so ``from repro.core.cost import AnalyticCostModel`` (the pre-PR-4
import path) keeps working; importing this module emits a
:class:`DeprecationWarning`. New code should import from
:mod:`repro.scheduling` (or :mod:`repro.scheduling.cost`).
"""

import warnings

from repro.scheduling.cost import (
    AnalyticCostModel,
    CostModel,
    CostPredictor,
    TelemetryRefinedCostModel,
    dataset_meta_features,
    forecast_shared_query,
    model_embedding,
    train_cost_predictor,
)

__all__ = [
    "dataset_meta_features",
    "model_embedding",
    "forecast_shared_query",
    "CostModel",
    "AnalyticCostModel",
    "CostPredictor",
    "TelemetryRefinedCostModel",
    "train_cost_predictor",
]

warnings.warn(
    "repro.core.cost has moved to repro.scheduling "
    "(cost models live in repro.scheduling.cost); "
    "this shim will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
