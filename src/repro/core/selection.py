"""Unsupervised model-pool trimming (future-work item #4 of the paper).

"We may incorporate the emerging automated OD, e.g., MetaOD, to trim
down the model space for further acceleration." Without MetaOD's meta-
learning corpus, this module implements the classic unsupervised
alternatives it builds on:

- **consensus trimming** — rank models by the Spearman correlation of
  their train scores with the pool consensus and keep the top fraction
  (SELECT-style vertical selection; Rayana & Akoglu, 2016);
- **diversity trimming** — greedily keep models that are accurate *and*
  mutually decorrelated (accuracy/diversity trade-off of outlier
  ensembles).

Trimming happens *after* a cheap fit on a subsample and *before* the
expensive full fit, so it composes with SUOD as a fourth acceleration
stage (see ``examples``/tests).
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

import numpy as np

from repro.combination.methods import zscore_standardise
from repro.detectors.base import BaseDetector
from repro.metrics.correlation import spearmanr
from repro.utils.random import check_random_state
from repro.utils.validation import check_array

__all__ = ["consensus_competence", "trim_pool"]


def consensus_competence(train_scores) -> np.ndarray:
    """Spearman correlation of each model's scores with the consensus.

    The consensus is the mean of the z-scored (n_models, n_train) score
    matrix — the standard pseudo ground truth of unsupervised ensemble
    selection.
    """
    S = np.asarray(train_scores, dtype=np.float64)
    if S.ndim != 2 or S.shape[0] < 2:
        raise ValueError("train_scores must be (n_models >= 2, n_train)")
    Z = zscore_standardise(S)
    consensus = Z.mean(axis=0)
    return np.array([spearmanr(row, consensus) for row in Z])


def trim_pool(
    models: Sequence[BaseDetector],
    X,
    *,
    keep_fraction: float = 0.5,
    strategy: str = "consensus",
    subsample: int = 500,
    random_state=None,
) -> tuple[list[BaseDetector], np.ndarray]:
    """Select a competent subset of an unfitted heterogeneous pool.

    A throwaway copy of each model is fitted on a subsample of ``X``;
    competence is estimated unsupervised and the top models (by the
    chosen strategy) are returned **unfitted** for the real run.

    Parameters
    ----------
    models : unfitted detector pool.
    X : training data (a subsample of it drives the selection).
    keep_fraction : float in (0, 1], fraction of models kept.
    strategy : {'consensus', 'diversity'}
        ``consensus`` keeps the highest consensus-correlated models;
        ``diversity`` greedily keeps consensus-competent models whose
        scores are not redundant with already-kept ones.
    subsample : int, subsample size for the cheap pilot fit.
    random_state : seed or Generator.

    Returns
    -------
    (kept_models, kept_indices)
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    if strategy not in ("consensus", "diversity"):
        raise ValueError("strategy must be 'consensus' or 'diversity'")
    models = list(models)
    if len(models) < 2:
        raise ValueError("need at least 2 models to trim")
    X = check_array(X, name="X")
    rng = check_random_state(random_state)
    n_keep = max(1, int(round(keep_fraction * len(models))))

    n_sub = min(subsample, X.shape[0])
    idx = rng.choice(X.shape[0], size=n_sub, replace=False)
    X_sub = X[idx]

    scores = np.empty((len(models), n_sub))
    for i, model in enumerate(models):
        pilot = copy.deepcopy(model)
        if hasattr(pilot, "random_state") and pilot.random_state is None:
            pilot.random_state = int(rng.integers(0, 2**31))
        # Clip neighborhood-style parameters that exceed the subsample.
        if hasattr(pilot, "n_neighbors"):
            pilot.n_neighbors = max(2, min(pilot.n_neighbors, n_sub - 1))
        if hasattr(pilot, "n_clusters"):
            pilot.n_clusters = max(1, min(pilot.n_clusters, n_sub))
        pilot.fit(X_sub)
        scores[i] = pilot.decision_scores_

    competence = consensus_competence(scores)

    if strategy == "consensus":
        kept = np.argsort(-competence, kind="mergesort")[:n_keep]
    else:
        Z = zscore_standardise(scores)
        order = np.argsort(-competence, kind="mergesort")
        kept_list: list[int] = [int(order[0])]
        for cand in order[1:]:
            if len(kept_list) == n_keep:
                break
            redundancy = max(abs(spearmanr(Z[cand], Z[j])) for j in kept_list)
            # Accept unless nearly duplicated by an already-kept model.
            if redundancy < 0.95:
                kept_list.append(int(cand))
        # Backfill if the redundancy filter was too aggressive.
        for cand in order:
            if len(kept_list) == n_keep:
                break
            if int(cand) not in kept_list:
                kept_list.append(int(cand))
        kept = np.array(kept_list)

    kept = np.sort(kept)
    return [models[i] for i in kept], kept
