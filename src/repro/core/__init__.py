"""The paper's primary contribution: the SUOD acceleration system.

- :mod:`repro.scheduling` — the scheduling subsystem (cost models,
  policy functions, Scheduler registry — §3.5). Re-exported here, with
  deprecation shims at the old ``repro.core.cost`` /
  ``repro.core.scheduling`` paths;
- :mod:`repro.core.approximation` — pseudo-supervised approximation
  (§3.4);
- :mod:`repro.core.suod` — the :class:`SUOD` meta-estimator composing
  RP + PSA + BPS behind a scikit-learn style API (Codeblock 1).
"""

from repro.scheduling import (
    AnalyticCostModel,
    CostPredictor,
    dataset_meta_features,
    model_embedding,
    train_cost_predictor,
    generic_schedule,
    shuffle_schedule,
    bps_schedule,
    lpt_partition,
    karmarkar_karp_partition,
    discounted_ranks,
)
from repro.core.approximation import Approximator, fit_approximators
from repro.core.selection import consensus_competence, trim_pool
from repro.core.suod import SUOD

__all__ = [
    "SUOD",
    "AnalyticCostModel",
    "CostPredictor",
    "dataset_meta_features",
    "model_embedding",
    "train_cost_predictor",
    "generic_schedule",
    "shuffle_schedule",
    "bps_schedule",
    "lpt_partition",
    "karmarkar_karp_partition",
    "discounted_ranks",
    "Approximator",
    "fit_approximators",
    "consensus_competence",
    "trim_pool",
]
