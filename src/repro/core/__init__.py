"""The paper's primary contribution: the SUOD acceleration system.

- :mod:`repro.core.cost` — model cost forecasting (meta-features, model
  embeddings, analytic complexity model, trainable random-forest cost
  predictor — §3.5);
- :mod:`repro.core.scheduling` — balanced parallel scheduling policies
  (generic / shuffle / BPS rank-sum balancing, Eq. 2);
- :mod:`repro.core.approximation` — pseudo-supervised approximation
  (§3.4);
- :mod:`repro.core.suod` — the :class:`SUOD` meta-estimator composing
  RP + PSA + BPS behind a scikit-learn style API (Codeblock 1).
"""

from repro.core.cost import (
    AnalyticCostModel,
    CostPredictor,
    dataset_meta_features,
    model_embedding,
    train_cost_predictor,
)
from repro.core.scheduling import (
    generic_schedule,
    shuffle_schedule,
    bps_schedule,
    lpt_partition,
    karmarkar_karp_partition,
    discounted_ranks,
)
from repro.core.approximation import Approximator, fit_approximators
from repro.core.selection import consensus_competence, trim_pool
from repro.core.suod import SUOD

__all__ = [
    "SUOD",
    "AnalyticCostModel",
    "CostPredictor",
    "dataset_meta_features",
    "model_embedding",
    "train_cost_predictor",
    "generic_schedule",
    "shuffle_schedule",
    "bps_schedule",
    "lpt_partition",
    "karmarkar_karp_partition",
    "discounted_ranks",
    "Approximator",
    "fit_approximators",
    "consensus_competence",
    "trim_pool",
]
