"""The SUOD meta-estimator: RP + PSA + BPS behind one API (Codeblock 1).

Composes the three independent acceleration modules over a heterogeneous
pool of base detectors:

- **RP** (``rp_flag_global``): each eligible base model trains in its own
  JL random subspace (diversity + compression). Subspace-style detectors
  (iForest, HBOS, ...) are exempt per §3.3's caution, as are datasets too
  small/narrow for the JL bound to be meaningful.
- **BPS** (``bps_flag``): model costs are forecast and models assigned to
  workers by balanced rank sums instead of contiguous equal counts.
- **PSA** (``approx_flag_global``): after fitting, costly detectors get a
  supervised stand-in for fast prediction on new samples.

Every flag can be toggled independently, so the baseline of Table 5
(``rp=False, approx=False, bps=False``) runs on identical machinery.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np

from repro.combination import ecdf_standardise, moa, zscore_standardise
from repro.core.approximation import Approximator, fit_approximators
from repro.core.cost import AnalyticCostModel
from repro.core.scheduling import bps_schedule, generic_schedule
from repro.detectors.base import BaseDetector
from repro.detectors.registry import family_of, is_costly
from repro.parallel import chunk_slices, get_backend, scatter_chunk_results
from repro.projection import JLProjector, NoProjection, jl_target_dim
from repro.utils.random import check_random_state, spawn_seeds
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["SUOD", "RP_NG_FAMILIES"]

# Families where projection "may not be helpful or even detrimental"
# (§3.3): subspace / histogram / per-feature methods.
RP_NG_FAMILIES = frozenset(
    {"IsolationForest", "HBOS", "LODA", "COPOD", "PCAD"}
)

_COMBINERS = ("average", "maximization", "moa")


def _fit_one(estimator: BaseDetector, X: np.ndarray) -> BaseDetector:
    """Module-level fit task (must be picklable for the process backend)."""
    return estimator.fit(X)


def _score_one(scorer, X: np.ndarray) -> np.ndarray:
    """Module-level predict task."""
    return scorer.decision_function(X)


class SUOD:
    """Scalable framework for heterogeneous unsupervised outlier detection.

    Parameters
    ----------
    base_estimators : sequence of BaseDetector
        The heterogeneous model pool M (unfitted instances).
    contamination : float in (0, 0.5], default 0.1
        Outlier fraction for thresholding combined scores.
    rp_flag_global : bool, default True
        Master switch of the random-projection module.
    rp_method : {'basic', 'discrete', 'circulant', 'toeplitz'}, default 'toeplitz'
        JL family (toeplitz = the paper's default choice after Table 1).
    rp_target_fraction : float in (0, 1], default 2/3
        Target dimension as a fraction of d (Table 1 uses 2/3).
    rp_min_features : int, default 4
        Skip projection below this dimensionality (nothing to compress).
    rp_min_samples : int, default 30
        Skip projection for tiny datasets where the Eq. 1 bound is void.
    approx_flag_global : bool, default True
        Master switch of pseudo-supervised approximation.
    approx_clf : regressor prototype or None
        Supervised approximator (cloned per model). Default: the
        library's RandomForestRegressor.
    bps_flag : bool, default True
        Master switch of balanced parallel scheduling (vs generic split).
    cost_predictor : object with ``forecast(models, X)`` or None
        Defaults to :class:`repro.core.cost.AnalyticCostModel`; pass a
        trained :class:`repro.core.cost.CostPredictor` for learned costs.
    n_jobs : int, default 1
        Worker count t.
    backend : {'sequential', 'threads', 'processes', 'simulated', 'work_stealing'}
        Execution backend (see :mod:`repro.parallel`). With ``n_jobs=1``
        the sequential backend is always used. ``'work_stealing'`` keeps
        the BPS/generic assignment as a locality hint but lets idle
        workers steal queued tasks at runtime, which recovers from bad
        cost forecasts.
    batch_size : int or None, default None
        Row-chunk size for scoring. When set, ``decision_function`` /
        ``predict`` split ``X`` into blocks of at most ``batch_size``
        rows and schedule (model × chunk) tasks instead of one task per
        model — a finer grain that packs workers tighter and bounds
        per-task memory. Chunked scores are bitwise identical to
        unchunked ones (per-row scorers are row-separable). Fitting
        keeps the per-model grain: detector training couples all rows,
        so a train-time row split would change the models themselves.
        Prefer the ``threads``/``work_stealing`` backends for chunked
        scoring; under ``processes`` a model whose chunks span workers
        is pickled once per worker group it appears in (up to
        ``n_jobs`` times) rather than once.
    combination : {'average', 'maximization', 'moa'}, default 'average'
        Combiner for the final score (the paper reports Avg and MOA).
    standardisation : {'ecdf', 'zscore'}, default 'ecdf'
        Per-model score unification applied before combination. The
        paper's experiments z-score; 'ecdf' (quantile against each
        model's training scores) is the robust default here because some
        detectors (notably ABOD) emit score distributions whose tails are
        orders of magnitude wider than their standard deviation and would
        dominate an averaged z-score — see DESIGN.md.
    random_state : seed or Generator.
    verbose : bool, default False

    Attributes
    ----------
    base_estimators_ : list of fitted detectors
    projectors_ : list of fitted projectors (NoProjection when RP is off)
    approximators_ : list of Approximator (empty if PSA globally off)
    rp_flags_ : (m,) bool array — RP actually applied per model
    approx_flags_ : (m,) bool array — PSA actually applied per model
    fit_assignment_ : (m,) int array — worker of each model during fit
    fit_result_ : repro.parallel.ExecutionResult of the fit phase
    train_score_matrix_ : (m, n) raw train scores per model
    decision_scores_, threshold_, labels_ : combined train outputs
    """

    def __init__(
        self,
        base_estimators: Sequence[BaseDetector],
        *,
        contamination: float = 0.1,
        rp_flag_global: bool = True,
        rp_method: str = "toeplitz",
        rp_target_fraction: float = 2.0 / 3.0,
        rp_min_features: int = 4,
        rp_min_samples: int = 30,
        approx_flag_global: bool = True,
        approx_clf=None,
        bps_flag: bool = True,
        cost_predictor=None,
        n_jobs: int = 1,
        backend: str = "sequential",
        batch_size: int | None = None,
        combination: str = "average",
        standardisation: str = "ecdf",
        random_state=None,
        verbose: bool = False,
    ):
        if not base_estimators:
            raise ValueError("base_estimators must be a non-empty sequence")
        for est in base_estimators:
            if not isinstance(est, BaseDetector):
                raise TypeError(
                    f"base estimators must subclass BaseDetector, got {type(est)}"
                )
        if not 0.0 < contamination <= 0.5:
            raise ValueError("contamination must be in (0, 0.5]")
        if combination not in _COMBINERS:
            raise ValueError(f"combination must be one of {_COMBINERS}")
        if standardisation not in ("ecdf", "zscore"):
            raise ValueError("standardisation must be 'ecdf' or 'zscore'")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be None or >= 1")
        self.base_estimators = list(base_estimators)
        self.contamination = contamination
        self.rp_flag_global = rp_flag_global
        self.rp_method = rp_method
        self.rp_target_fraction = rp_target_fraction
        self.rp_min_features = rp_min_features
        self.rp_min_samples = rp_min_samples
        self.approx_flag_global = approx_flag_global
        self.approx_clf = approx_clf
        self.bps_flag = bps_flag
        self.cost_predictor = cost_predictor
        self.n_jobs = n_jobs
        self.backend = backend
        self.batch_size = batch_size
        self.combination = combination
        self.standardisation = standardisation
        self.random_state = random_state
        self.verbose = verbose

    # ------------------------------------------------------------------
    @property
    def n_models(self) -> int:
        return len(self.base_estimators)

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[SUOD] {msg}")

    def _make_backend(self):
        if self.n_jobs == 1:
            return get_backend("sequential")
        return get_backend(self.backend, n_workers=self.n_jobs)

    def _forecast(self, models, X) -> np.ndarray:
        predictor = self.cost_predictor or AnalyticCostModel()
        return np.asarray(predictor.forecast(models, X), dtype=np.float64)

    def _schedule_costs(self, n_tasks: int, costs: np.ndarray | None) -> np.ndarray:
        """Assignment for ``n_tasks`` tasks from optional forecast costs."""
        if self.n_jobs == 1:
            return np.zeros(n_tasks, dtype=np.int64)
        if not self.bps_flag or costs is None:
            return generic_schedule(n_tasks, self.n_jobs)
        return bps_schedule(costs, self.n_jobs)

    def _schedule(self, models, X) -> np.ndarray:
        if self.n_jobs == 1 or not self.bps_flag:
            return self._schedule_costs(len(models), None)
        return self._schedule_costs(len(models), self._forecast(models, X))

    # ------------------------------------------------------------------
    def fit(self, X, y=None) -> "SUOD":
        """Fit the heterogeneous pool (Algorithm 1, training phase)."""
        X = check_array(X, name="X")
        n, d = X.shape
        rng = check_random_state(self.random_state)
        m = self.n_models
        seeds = spawn_seeds(rng, 2 * m)

        # -- RP: per-model feature spaces (Algorithm 1 lines 1-8) -------
        k = jl_target_dim(d, self.rp_target_fraction)
        rp_flags = np.zeros(m, dtype=bool)
        projectors = []
        for i, est in enumerate(self.base_estimators):
            use_rp = (
                self.rp_flag_global
                and family_of(est) not in RP_NG_FAMILIES
                and d >= self.rp_min_features
                and n >= self.rp_min_samples
                and k < d
            )
            rp_flags[i] = use_rp
            proj = (
                JLProjector(k, family=self.rp_method, random_state=seeds[i])
                if use_rp
                else NoProjection()
            )
            projectors.append(proj.fit(X))
        spaces = [proj.transform(X) for proj in projectors]
        self._log(
            f"RP: {int(rp_flags.sum())}/{m} models projected to k={k} "
            f"({self.rp_method})"
        )

        # Seed stochastic estimators deterministically.
        for i, est in enumerate(self.base_estimators):
            if hasattr(est, "random_state") and est.random_state is None:
                est.random_state = seeds[m + i]

        # -- BPS + execution (Algorithm 1 lines 9-13) --------------------
        assignment = self._schedule(self.base_estimators, X)
        tasks = [
            functools.partial(_fit_one, est, spaces[i])
            for i, est in enumerate(self.base_estimators)
        ]
        backend = self._make_backend()
        result = backend.execute(tasks, assignment)
        result.raise_first_error()
        self.base_estimators_ = list(result.results)
        self.fit_assignment_ = assignment
        self.fit_result_ = result
        self._log(f"fit wall time: {result.wall_time:.3f}s")

        self.projectors_ = projectors
        self.rp_flags_ = rp_flags
        self.n_features_in_ = d

        # -- train score matrix + combination ----------------------------
        self.train_score_matrix_ = np.stack(
            [est.decision_scores_ for est in self.base_estimators_]
        )
        std_train = self._standardise(self.train_score_matrix_)
        self.decision_scores_ = self._combine_pre(std_train)
        self.threshold_ = float(
            np.quantile(self.decision_scores_, 1.0 - self.contamination)
        )
        self.labels_ = (self.decision_scores_ > self.threshold_).astype(np.int64)

        # -- PSA (Algorithm 1 lines 15-22) --------------------------------
        if self.approx_flag_global:
            flags = [is_costly(est) for est in self.base_estimators_]
            regressor = self.approx_clf
            if regressor is None:
                from repro.supervised import RandomForestRegressor

                # Seed the default approximator so the whole pipeline is
                # reproducible under a fixed random_state.
                regressor = RandomForestRegressor(
                    random_state=spawn_seeds(rng, 1)[0]
                )
            self.approximators_ = fit_approximators(
                self.base_estimators_,
                spaces,
                regressor=regressor,
                approx_flags=flags,
            )
            self.approx_flags_ = np.array(
                [a.approximated for a in self.approximators_]
            )
            self._log(f"PSA: {int(self.approx_flags_.sum())}/{m} models approximated")
        else:
            self.approximators_ = [
                Approximator(est, enabled=False)
                for est in self.base_estimators_
            ]
            self.approx_flags_ = np.zeros(m, dtype=bool)
        return self

    # ------------------------------------------------------------------
    def _standardise(self, matrix: np.ndarray, ref: np.ndarray | None = None):
        if self.standardisation == "zscore":
            return zscore_standardise(matrix, ref=ref)
        return ecdf_standardise(matrix, ref=ref)

    def _combine_pre(self, standardised_matrix: np.ndarray) -> np.ndarray:
        """Combine an already-standardised (m, l) score matrix."""
        if self.combination == "average":
            return standardised_matrix.mean(axis=0)
        if self.combination == "maximization":
            return standardised_matrix.max(axis=0)
        n_buckets = min(5, standardised_matrix.shape[0])
        return moa(
            standardised_matrix,
            n_buckets=n_buckets,
            standardise=False,
            random_state=0,
        )

    def decision_function_matrix(self, X) -> np.ndarray:
        """Raw (m, l) score matrix on new samples (one row per model).

        With ``batch_size`` set and more rows than the batch, the work is
        split into (model × row-chunk) tasks; otherwise each model scores
        all rows in one task. Either way, the returned matrix is
        identical — chunking changes the execution grain only.
        """
        check_is_fitted(self, "base_estimators_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        n = X.shape[0]
        spaces = [proj.transform(X) for proj in self.projectors_]
        if self.batch_size is not None and n > self.batch_size:
            return self._score_chunked(X, spaces, n)
        assignment = self._schedule(self.base_estimators_, X)
        tasks = [
            functools.partial(_score_one, approx, spaces[i])
            for i, approx in enumerate(self.approximators_)
        ]
        backend = self._make_backend()
        result = backend.execute(tasks, assignment)
        result.raise_first_error()
        self.predict_result_ = result
        return np.stack(result.results)

    def _score_chunked(self, X, spaces, n: int) -> np.ndarray:
        """Score via (model × chunk) tasks and reassemble the matrix.

        Per-task forecast cost is the model's forecast scaled by the
        chunk's row fraction, so BPS ranks stay meaningful at the finer
        grain. Projection happened once on the full ``X`` (chunks are
        views of the projected spaces), which is what makes chunked and
        unchunked scores bitwise-equal.
        """
        slices = chunk_slices(n, self.batch_size)
        owners = [
            (i, sl) for i in range(self.n_models) for sl in slices
        ]
        tasks = [
            functools.partial(_score_one, self.approximators_[i], spaces[i][sl])
            for i, sl in owners
        ]
        if self.n_jobs > 1 and self.bps_flag:
            model_costs = self._forecast(self.base_estimators_, X)
            costs = np.array(
                [model_costs[i] * (sl.stop - sl.start) / n for i, sl in owners]
            )
        else:
            costs = None
        assignment = self._schedule_costs(len(tasks), costs)
        backend = self._make_backend()
        result = backend.execute(tasks, assignment)
        result.raise_first_error()
        self.predict_result_ = result
        self._log(
            f"chunked scoring: {self.n_models} models x {len(slices)} chunks "
            f"(batch_size={self.batch_size}), wall {result.wall_time:.3f}s"
        )
        return scatter_chunk_results(result.results, owners, self.n_models, n)

    def decision_function(self, X) -> np.ndarray:
        """Combined outlyingness of new samples (larger = more outlying).

        Per-model scores are unified against each model's *training*
        distribution before combination, so heterogeneous scales stay
        comparable between train and test.
        """
        matrix = self.decision_function_matrix(X)
        matrix = self._standardise(matrix, ref=self.train_score_matrix_)
        return self._combine_pre(matrix)

    def predict(self, X) -> np.ndarray:
        """Binary labels on new samples (1 = outlier).

        Test scores live on the same (train-referenced) scale as
        ``decision_scores_``, so the fit-time threshold applies directly.
        """
        return (self.decision_function(X) > self.threshold_).astype(np.int64)

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit and return training labels."""
        return self.fit(X).labels_

    def __repr__(self) -> str:
        return (
            f"SUOD(m={self.n_models}, rp={self.rp_flag_global}, "
            f"approx={self.approx_flag_global}, bps={self.bps_flag}, "
            f"n_jobs={self.n_jobs}, backend={self.backend!r}, "
            f"batch_size={self.batch_size})"
        )
