"""The SUOD meta-estimator: RP + PSA + BPS behind one API (Codeblock 1).

Composes the three independent acceleration modules over a heterogeneous
pool of base detectors:

- **RP** (``rp_flag_global``): each eligible base model trains in its own
  JL random subspace (diversity + compression). Subspace-style detectors
  (iForest, HBOS, ...) are exempt per §3.3's caution, as are datasets too
  small/narrow for the JL bound to be meaningful.
- **BPS** (``bps_flag``): model costs are forecast and models assigned to
  workers by balanced rank sums instead of contiguous equal counts. The
  policy behind the flag is pluggable (``scheduler=``): any registered
  :class:`repro.scheduling.Scheduler`, including the ``adaptive`` one
  that reschedules consecutive batches on *measured* task durations.
- **PSA** (``approx_flag_global``): after fitting, costly detectors get a
  supervised stand-in for fast prediction on new samples.

Every flag can be toggled independently, so the baseline of Table 5
(``rp=False, approx=False, bps=False``) runs on identical machinery.

Architecturally, :class:`SUOD` is a thin façade over
:mod:`repro.pipeline`: ``fit`` and ``decision_function`` each *compile*
an :class:`~repro.pipeline.ExecutionPlan` of stages —

    project -> forecast -> share -> schedule -> execute -> approximate
    -> combine

— and hand it to a :class:`~repro.pipeline.PlanRunner`, the single
execution path shared by every backend. The ``share`` stage (between
``forecast`` and ``schedule``) is the plan-level CSE pass: it folds
redundant neighbor structures into shared producer tasks whose fused
query results every consuming detector prefix-slices — the execute
stage then runs a two-wave dependency DAG (producers, then consumers)
with bitwise-identical scores (:mod:`repro.pipeline.sharing`).
``build_fit_plan`` /
``build_predict_plan`` expose the plans directly (the ``repro plan``
CLI renders them; partial runs preview forecast costs and the chosen
assignment without fitting anything). Stage-level telemetry lands in
``fit_plan_`` / ``predict_plan_``; plans and the ``fit_result_`` /
``predict_result_`` execution results are ephemeral run artefacts
and are deliberately excluded from pickles (see
:mod:`repro.utils.persistence` for ensemble round-tripping).
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np

from repro.combination import ecdf_standardise, moa, zscore_standardise
from repro.core.approximation import Approximator, fit_approximators
from repro.detectors.base import BaseDetector
from repro.detectors.registry import family_of, is_costly
from repro.parallel import (
    ExecutionResult,
    chunk_slices,
    get_backend,
    get_backend_class,
    resolve_array,
    scatter_chunk_results,
)
from repro.pipeline import ExecutionPlan, PlanContext, PlanRunner, Stage
from repro.pipeline.sharing import (
    derive_fit_sharing,
    derive_predict_sharing,
    fit_one_shared,
    produce_fit_query,
    produce_predict_query,
    score_one_shared,
    score_slice_shared,
)
from repro.projection import JLProjector, NoProjection, jl_target_dim
from repro.scheduling import (
    AnalyticCostModel,
    Scheduler,
    forecast_shared_query,
    get_scheduler_class,
)
from repro.utils.random import check_random_state, spawn_seeds
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["SUOD", "RP_NG_FAMILIES"]

# Families where projection "may not be helpful or even detrimental"
# (§3.3): subspace / histogram / per-feature methods.
RP_NG_FAMILIES = frozenset({"IsolationForest", "HBOS", "LODA", "COPOD", "PCAD"})

_COMBINERS = ("average", "maximization", "moa")


def _fit_one(estimator: BaseDetector, X) -> BaseDetector:
    """Module-level fit task (must be picklable for the process backends).

    ``X`` is either an ndarray (in-memory backends) or a
    :class:`~repro.parallel.SharedArrayHandle` the worker resolves to a
    read-only view of the shared segment (shm process backend).
    """
    return estimator.fit(resolve_array(X))


def _score_one(scorer, X) -> np.ndarray:
    """Module-level predict task (ndarray or shared-array handle)."""
    return scorer.decision_function(resolve_array(X))


def _score_slice(scorer, X, sl: slice) -> np.ndarray:
    """Chunked predict task: score ``X[sl]`` worker-side.

    With a shared-array handle the row block is sliced off the attached
    view, so a (model × chunk) task ships only (handle, slice) — no row
    data crosses the process boundary in either direction except the
    chunk's scores.
    """
    return scorer.decision_function(resolve_array(X)[sl])


class SUOD:
    """Scalable framework for heterogeneous unsupervised outlier detection.

    Parameters
    ----------
    base_estimators : sequence of BaseDetector
        The heterogeneous model pool M (unfitted instances).
    contamination : float in (0, 0.5], default 0.1
        Outlier fraction for thresholding combined scores.
    rp_flag_global : bool, default True
        Master switch of the random-projection module.
    rp_method : {'basic', 'discrete', 'circulant', 'toeplitz'}, default 'toeplitz'
        JL family (toeplitz = the paper's default choice after Table 1).
    rp_target_fraction : float in (0, 1], default 2/3
        Target dimension as a fraction of d (Table 1 uses 2/3).
    rp_min_features : int, default 4
        Skip projection below this dimensionality (nothing to compress).
    rp_min_samples : int, default 30
        Skip projection for tiny datasets where the Eq. 1 bound is void.
    approx_flag_global : bool, default True
        Master switch of pseudo-supervised approximation.
    approx_clf : regressor prototype or None
        Supervised approximator (cloned per model). Default: the
        library's RandomForestRegressor.
    share_flag : bool, default True
        Master switch of the shared-computation plane. When on, the
        ``share`` plan stage folds neighbor-based detectors that query
        the same (sub)space with a KD-tree engine into one shared build
        plus one fused batched query at ``max(k_i)`` (+1 slack at fit);
        each consumer slices its own ``k_i`` prefix. Scores are
        bitwise-identical either way (the canonical tie-order contract,
        pinned by the parity tests); the flag exists to measure the
        redundant baseline and to disable the rewrite wholesale.
    bps_flag : bool, default True
        Master switch of balanced parallel scheduling (vs generic split).
        Legacy toggle: with ``scheduler=None`` it selects between the
        ``'bps-lpt'`` and ``'generic'`` policies, exactly as before.
    scheduler : str, Scheduler or None, default None
        Scheduling policy. A registry name (``'generic'``, ``'shuffle'``,
        ``'bps-lpt'``, ``'bps-kk'``, ``'adaptive'`` — see
        :func:`repro.scheduling.list_schedulers`; legacy spellings like
        ``'bps'`` still resolve with a DeprecationWarning), a
        :class:`repro.scheduling.Scheduler` instance (e.g. a pre-warmed
        :class:`~repro.scheduling.AdaptiveScheduler`), or None to derive
        the policy from ``bps_flag``. ``'adaptive'`` closes the feedback
        loop: every executed batch's measured per-task durations refine
        the cost model, so consecutive ``predict`` batches are
        rescheduled on observed — not guessed — costs.
    cost_predictor : object satisfying the CostModel protocol, or None
        Defaults to :class:`repro.scheduling.AnalyticCostModel`; pass a
        trained :class:`repro.scheduling.CostPredictor` for learned
        costs, or a :class:`repro.scheduling.TelemetryRefinedCostModel`
        for externally managed feedback.
    n_jobs : int, default 1
        Worker count t.
    backend : {'sequential', 'threads', 'processes', 'shm_processes', \
'simulated', 'work_stealing'}
        Execution backend (see :mod:`repro.parallel`). With ``n_jobs=1``
        the sequential backend is always used. ``'work_stealing'`` keeps
        the BPS/generic assignment as a locality hint but lets idle
        workers steal queued tasks at runtime, which recovers from bad
        cost forecasts. ``'shm_processes'`` runs processes over a
        shared-memory data plane: the plan runner materialises ``X``'s
        projected spaces into shared segments once, task payloads carry
        handles instead of array copies, and a persistent worker pool
        is reused across fit/predict and repeated scoring batches.
    batch_size : int or None, default None
        Row-chunk size for scoring. When set, ``decision_function`` /
        ``predict`` split ``X`` into blocks of at most ``batch_size``
        rows and schedule (model × chunk) tasks instead of one task per
        model — a finer grain that packs workers tighter and bounds
        per-task memory. Chunked scores are bitwise identical to
        unchunked ones (per-row scorers are row-separable), under every
        backend. Fitting keeps the per-model grain: detector training
        couples all rows, so a train-time row split would change the
        models themselves. Chunking pairs naturally with
        ``threads``/``work_stealing`` and with ``shm_processes``, where
        a chunk task ships only (handle, slice) and each worker slices
        rows off its attached view; under plain ``processes`` each
        chunk task pickles its row block, so the finer grain multiplies
        copies.
    combination : {'average', 'maximization', 'moa'}, default 'average'
        Combiner for the final score (the paper reports Avg and MOA).
    standardisation : {'ecdf', 'zscore'}, default 'ecdf'
        Per-model score unification applied before combination. The
        paper's experiments z-score; 'ecdf' (quantile against each
        model's training scores) is the robust default here because some
        detectors (notably ABOD) emit score distributions whose tails are
        orders of magnitude wider than their standard deviation and would
        dominate an averaged z-score — see DESIGN.md.
    random_state : seed or Generator.
    verbose : bool, default False

    Attributes
    ----------
    base_estimators_ : list of fitted detectors
    projectors_ : list of fitted projectors (NoProjection when RP is off)
    approximators_ : list of Approximator (empty if PSA globally off)
    rp_flags_ : (m,) bool array — RP actually applied per model
    approx_flags_ : (m,) bool array — PSA actually applied per model
    fit_assignment_ : (m,) int array — worker of each model during fit
    fit_result_ : repro.parallel.ExecutionResult of the fit phase
    fit_plan_ : repro.pipeline.ExecutionPlan of the last fit pass
    predict_result_ : ExecutionResult of the last scoring pass
    predict_plan_ : ExecutionPlan of the last scoring pass
    train_score_matrix_ : (m, n) raw train scores per model
    decision_scores_, threshold_, labels_ : combined train outputs
    """

    def __init__(
        self,
        base_estimators: Sequence[BaseDetector],
        *,
        contamination: float = 0.1,
        rp_flag_global: bool = True,
        rp_method: str = "toeplitz",
        rp_target_fraction: float = 2.0 / 3.0,
        rp_min_features: int = 4,
        rp_min_samples: int = 30,
        approx_flag_global: bool = True,
        approx_clf=None,
        share_flag: bool = True,
        bps_flag: bool = True,
        scheduler=None,
        cost_predictor=None,
        n_jobs: int = 1,
        backend: str = "sequential",
        batch_size: int | None = None,
        combination: str = "average",
        standardisation: str = "ecdf",
        random_state=None,
        verbose: bool = False,
    ):
        if not base_estimators:
            raise ValueError("base_estimators must be a non-empty sequence")
        for est in base_estimators:
            if not isinstance(est, BaseDetector):
                raise TypeError(
                    f"base estimators must subclass BaseDetector, got {type(est)}"
                )
        if not 0.0 < contamination <= 0.5:
            raise ValueError("contamination must be in (0, 0.5]")
        if combination not in _COMBINERS:
            raise ValueError(f"combination must be one of {_COMBINERS}")
        if standardisation not in ("ecdf", "zscore"):
            raise ValueError("standardisation must be 'ecdf' or 'zscore'")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be None or >= 1")
        if isinstance(scheduler, str):
            get_scheduler_class(scheduler)  # fail fast on unknown names
        elif scheduler is not None and not isinstance(scheduler, Scheduler):
            raise TypeError(
                "scheduler must be a registered policy name, a "
                f"repro.scheduling.Scheduler instance or None, got {type(scheduler)}"
            )
        self.base_estimators = list(base_estimators)
        self.contamination = contamination
        self.rp_flag_global = rp_flag_global
        self.rp_method = rp_method
        self.rp_target_fraction = rp_target_fraction
        self.rp_min_features = rp_min_features
        self.rp_min_samples = rp_min_samples
        self.approx_flag_global = approx_flag_global
        self.approx_clf = approx_clf
        self.share_flag = share_flag
        self.bps_flag = bps_flag
        self.scheduler = scheduler
        self.cost_predictor = cost_predictor
        self.n_jobs = n_jobs
        self.backend = backend
        self.batch_size = batch_size
        self.combination = combination
        self.standardisation = standardisation
        self.random_state = random_state
        self.verbose = verbose

    # ------------------------------------------------------------------
    @property
    def n_models(self) -> int:
        return len(self.base_estimators)

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[SUOD] {msg}")

    def _make_backend(self):
        """The active backend instance, cached across plan stages.

        Caching matters for pool-holding backends (``shm_processes``):
        the fit execute, predict execute, and every subsequent scoring
        batch reuse one warm worker pool instead of spawning processes
        per stage. The cache is invalidated when ``backend``/``n_jobs``
        change, dropped from pickles, and closed via :meth:`close`.
        """
        key = (self._effective_backend, self.n_jobs)
        if getattr(self, "_backend_key_", None) == key:
            return self._backend_instance_
        self.close()
        if self.n_jobs == 1:
            backend = get_backend("sequential")
        else:
            backend = get_backend(self.backend, n_workers=self.n_jobs)
        self._backend_instance_ = backend
        self._backend_key_ = key
        return backend

    def close(self) -> None:
        """Shut down the cached backend's worker pool, if it holds one.

        Safe to call at any time (idempotent); the next fit/predict
        simply builds a fresh backend. Long-lived services should call
        this when retiring an estimator so pooled worker processes do
        not linger until garbage collection.
        """
        backend = getattr(self, "_backend_instance_", None)
        if backend is not None and hasattr(backend, "shutdown"):
            backend.shutdown()
        self._backend_instance_ = None
        self._backend_key_ = None

    @property
    def _effective_backend(self) -> str:
        return "sequential" if self.n_jobs == 1 else self.backend

    @property
    def _uses_shm(self) -> bool:
        """Whether the active backend wants plan data in shared memory."""
        return bool(
            getattr(
                get_backend_class(self._effective_backend),
                "uses_shared_memory",
                False,
            )
        )

    def _cost_predictor(self):
        """The single selection point for the active cost predictor."""
        return self.cost_predictor or AnalyticCostModel()

    def _make_scheduler(self) -> Scheduler:
        """The active Scheduler instance, cached across plans/batches.

        Caching matters for the adaptive policy: its telemetry-refined
        cost model accumulates observations across consecutive predict
        batches, so the instance must survive plan boundaries. Instances
        passed directly are used as-is (their state is the caller's);
        names and the ``bps_flag`` default resolve through the registry
        once and are invalidated when the parameters change.
        """
        spec = self.scheduler
        if isinstance(spec, Scheduler):
            return spec
        if spec is None:
            key = ("default", bool(self.bps_flag))
            name = "bps-lpt" if self.bps_flag else "generic"
        else:
            key = ("named", spec)
            name = spec
        if getattr(self, "_scheduler_key_", None) == key:
            return self._scheduler_instance_
        cls = get_scheduler_class(name)
        try:
            instance = cls(random_state=self.random_state)
        except TypeError:
            # Deterministic policies take no seed.
            instance = cls()
        self._scheduler_instance_ = instance
        self._scheduler_key_ = key
        return instance

    @staticmethod
    def _task_identities(ctx: PlanContext) -> tuple[list, np.ndarray]:
        """Stable per-task keys + work weights for the feedback loop.

        Keys are ``(plan kind, model index)`` so fit and predict costs
        never mix and chunked tasks of one model share an identity;
        weights are row counts, so observed durations normalise to a
        per-row rate that transfers across batch sizes.
        """
        kind = ctx.kind
        if ctx.owners is not None:
            keys = [(kind, i) for i, _sl in ctx.owners]
            weights = np.array([float(sl.stop - sl.start) for _, sl in ctx.owners])
        else:
            n_rows = float(ctx.X.shape[0])
            keys = [(kind, i) for i in range(ctx.n_tasks)]
            weights = np.full(ctx.n_tasks, max(n_rows, 1.0))
        return keys, weights

    def _observe_execution(self, ctx: PlanContext, result: ExecutionResult) -> int:
        """Pipe execute-stage telemetry into the scheduler's feedback loop."""
        if self.n_jobs == 1:
            return 0
        scheduler = self._make_scheduler()
        if not scheduler.adaptive:
            return 0
        keys = ctx.get("task_keys")
        weights = ctx.get("task_weights")
        if keys is None or result.task_times.size != len(keys):
            keys, weights = self._task_identities(ctx)
            if result.task_times.size != len(keys):
                return 0
        return scheduler.observe(result.task_times, task_keys=keys, weights=weights)

    # ------------------------------------------------------------------
    # Plan compilation — the façade's whole job. Stages communicate via
    # the PlanContext; fitted state lands on ``self`` exactly as the
    # monolithic fit/predict bodies used to leave it.
    # ------------------------------------------------------------------
    def _plan_meta(self, *, grain: str, n_tasks: int) -> dict:
        return {
            "backend": self._effective_backend,
            "n_jobs": self.n_jobs,
            "n_models": self.n_models,
            "grain": grain,
            "n_tasks": n_tasks,
            "sharing": self.share_flag,
            "bps": self.bps_flag,
            "scheduler": "single-worker"
            if self.n_jobs == 1
            else self._make_scheduler().name,
            "batch_size": self.batch_size,
            "shm": self._uses_shm,
        }

    def build_fit_plan(self, X) -> ExecutionPlan:
        """Compile the training pass into an inspectable ExecutionPlan.

        Running the returned plan (via :class:`PlanRunner`) *is* fitting
        this estimator: stages write fitted attributes onto ``self``.
        A partial run (``until='schedule'``) computes only forecast
        costs and the worker assignment — nothing is trained.
        """
        X = check_array(X, name="X")
        ctx = PlanContext(
            X=X,
            models=self.base_estimators,
            rng=check_random_state(self.random_state),
            owners=None,
            n_tasks=self.n_models,
            kind="fit",
        )
        stages = [
            Stage(
                "project",
                self._fit_stage_project,
                "fit per-model JL projectors; transform X into model spaces",
            ),
            Stage(
                "forecast",
                self._stage_forecast,
                "forecast per-task costs (analytic or learned predictor)",
            ),
            Stage(
                "share",
                self._fit_stage_share,
                "fold redundant neighbor structures into shared producers",
            ),
            Stage(
                "schedule",
                self._stage_schedule,
                "map tasks to workers (BPS rank balancing or generic split)",
            ),
            Stage(
                "execute",
                self._fit_stage_execute,
                "fit all detectors through the parallel backend",
            ),
            Stage(
                "approximate",
                self._fit_stage_approximate,
                "train pseudo-supervised approximators for costly models",
            ),
            Stage(
                "combine",
                self._fit_stage_combine,
                "standardise + combine train scores; set threshold/labels",
            ),
        ]
        plan = ExecutionPlan(
            kind="fit",
            stages=stages,
            context=ctx,
            meta=self._plan_meta(grain="model", n_tasks=self.n_models),
            shm_keys=("spaces",) if self._uses_shm else (),
        )
        self.fit_plan_ = plan
        return plan

    def build_predict_plan(self, X) -> ExecutionPlan:
        """Compile a scoring pass over ``X`` into an ExecutionPlan.

        Requires a fitted estimator. With ``batch_size`` set and more
        rows than the batch, the task grain becomes (model × row-chunk);
        forecast costs are scaled by each chunk's row fraction so BPS
        ranks stay meaningful at the finer grain.
        """
        check_is_fitted(self, "base_estimators_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        n = X.shape[0]
        chunked = self.batch_size is not None and n > self.batch_size
        if chunked:
            slices = chunk_slices(n, self.batch_size)
            owners = [(i, sl) for i in range(self.n_models) for sl in slices]
        else:
            slices, owners = None, None
        n_tasks = len(owners) if chunked else self.n_models
        ctx = PlanContext(
            X=X,
            models=self.base_estimators_,
            owners=owners,
            slices=slices,
            n_tasks=n_tasks,
            kind="predict",
        )
        stages = [
            Stage(
                "project",
                self._predict_stage_project,
                "transform X through the fitted projectors",
            ),
            Stage(
                "forecast",
                self._stage_forecast,
                "forecast per-task costs (analytic or learned predictor)",
            ),
            Stage(
                "share",
                self._predict_stage_share,
                "fold redundant neighbor queries into shared producers",
            ),
            Stage(
                "schedule",
                self._stage_schedule,
                "map tasks to workers (BPS rank balancing or generic split)",
            ),
            Stage(
                "execute",
                self._predict_stage_execute,
                "score every task through the parallel backend; gather matrix",
            ),
            Stage(
                "combine",
                self._predict_stage_combine,
                "standardise against train scores; combine into one score",
            ),
        ]
        plan = ExecutionPlan(
            kind="predict",
            stages=stages,
            context=ctx,
            meta=self._plan_meta(
                grain="model x chunk" if chunked else "model", n_tasks=n_tasks
            ),
            shm_keys=("spaces",) if self._uses_shm else (),
        )
        self.predict_plan_ = plan
        return plan

    # -- shared stages --------------------------------------------------
    def _stage_forecast(self, ctx: PlanContext) -> dict:
        """Per-task cost forecasts (skipped exactly when scheduling
        cannot use them, so an untrained CostPredictor with n_jobs=1
        keeps working as before)."""
        if self.n_jobs == 1 or not self._make_scheduler().uses_costs:
            ctx.model_costs = None
            ctx.costs = None
            reason = (
                "n_jobs == 1"
                if self.n_jobs == 1
                else f"scheduler {self._make_scheduler().name!r} ignores costs"
            )
            return {"forecast": "skipped", "reason": reason}
        predictor = self._cost_predictor()
        model_costs = np.asarray(
            predictor.forecast(ctx.models, ctx.X), dtype=np.float64
        )
        ctx.model_costs = model_costs
        if ctx.owners is not None:
            n = ctx.X.shape[0]
            ctx.costs = np.array(
                [model_costs[i] * (sl.stop - sl.start) / n for i, sl in ctx.owners]
            )
        else:
            ctx.costs = model_costs
        return {
            "predictor": type(predictor).__name__,
            "total_cost": float(ctx.costs.sum()),
            "max_cost": float(ctx.costs.max(initial=0.0)),
        }

    def _stage_schedule(self, ctx: PlanContext) -> dict:
        if self.n_jobs == 1:
            ctx.assignment = np.zeros(ctx.n_tasks, dtype=np.int64)
            info = {"policy": "single-worker"}
        else:
            scheduler = self._make_scheduler()
            keys, weights = self._task_identities(ctx)
            ctx.task_keys = keys
            ctx.task_weights = weights
            ctx.assignment = scheduler.assign(
                ctx.n_tasks,
                self.n_jobs,
                ctx.costs,
                task_keys=keys,
                weights=weights,
            )
            info = {"policy": scheduler.name}
            if scheduler.adaptive:
                # How much measured telemetry backed this assignment.
                info["n_observed"] = int(scheduler.n_observed)
        counts = np.bincount(ctx.assignment, minlength=self.n_jobs)
        info["n_tasks"] = int(ctx.n_tasks)
        info["tasks_per_worker"] = counts.tolist()
        self._schedule_producers(ctx, info)
        return info

    def _schedule_producers(self, ctx: PlanContext, info: dict) -> None:
        """Assign the sharing plan's producer wave (first-class tasks).

        Producers get their own assignment, cost forecasts
        (``ctx.producer_costs``, from the share stage) and stable task
        keys ``('<kind>-share', qid)``, so the adaptive scheduler
        arbitrates shared builds against ordinary fit/score tasks on
        measured durations.
        """
        sharing = ctx.get("sharing")
        if sharing is None or not sharing.active:
            return
        n_producers = len(sharing.queries)
        if self.n_jobs == 1:
            ctx.producer_assignment = np.zeros(n_producers, dtype=np.int64)
        else:
            scheduler = self._make_scheduler()
            keys = [(f"{ctx.kind}-share", qid) for qid in range(n_producers)]
            weights = np.array([float(q.n_query) for q in sharing.queries])
            ctx.producer_task_keys = keys
            ctx.producer_task_weights = weights
            ctx.producer_assignment = scheduler.assign(
                n_producers,
                self.n_jobs,
                ctx.get("producer_costs"),
                task_keys=keys,
                weights=weights,
            )
        info["producer_tasks"] = n_producers

    # -- sharing stages --------------------------------------------------
    def _stage_share(self, ctx: PlanContext, sharing) -> dict:
        """Common tail of the fit/predict share stages: record the
        derived plan, forecast producer costs, report the dedup ledger."""
        ctx.sharing = sharing
        info = sharing.summary()
        if sharing.active and self.n_jobs > 1 and self._make_scheduler().uses_costs:
            ctx.producer_costs = np.array(
                [
                    forecast_shared_query(q.n_index, q.n_query, q.n_features, q.width)
                    for q in sharing.queries
                ]
            )
        else:
            ctx.producer_costs = None
        if sharing.active:
            self._log(
                f"sharing: {info['queries_fused']} neighbor tasks folded into "
                f"{info['structures_built']} shared structure(s)"
            )
        return info

    def _fit_stage_share(self, ctx: PlanContext) -> dict:
        if not self.share_flag:
            ctx.sharing = None
            info = {"sharing": "disabled"}
        else:
            info = self._stage_share(
                ctx, derive_fit_sharing(self.base_estimators, ctx.spaces)
            )
        self.sharing_fit_info_ = info
        return info

    def _predict_stage_share(self, ctx: PlanContext) -> dict:
        if not self.share_flag:
            ctx.sharing = None
            info = {"sharing": "disabled"}
        else:
            info = self._stage_share(
                ctx,
                derive_predict_sharing(self.approximators_, ctx.spaces, ctx.n_tasks),
            )
        self.sharing_predict_info_ = info
        return info

    def _run_producer_wave(self, ctx: PlanContext, backend) -> dict | None:
        """Wave 0 of the execute DAG: run shared producers, publish results.

        Executes the sharing plan's producer tasks through the same
        backend/assignment machinery as ordinary tasks, feeds their
        measured durations to the adaptive scheduler under the producer
        task keys, and publishes each fused ``(distance, index)`` pair
        for the consumer wave — into the plan's shm arena as read-only
        handles when the data plane is active, as in-memory arrays
        otherwise. Fit-plan producers also return the group's fitted
        index, kept on the query for post-fit injection.
        """
        sharing = ctx.get("sharing")
        if sharing is None or not sharing.active:
            return None
        data = ctx.get("shared_spaces") or ctx.spaces
        if ctx.kind == "fit":
            tasks = [
                functools.partial(
                    produce_fit_query, data[q.space_index], tuple(q.ks), q.metric
                )
                for q in sharing.queries
            ]
        else:
            tasks = [
                functools.partial(
                    produce_predict_query, q.index, data[q.space_index], tuple(q.ks)
                )
                for q in sharing.queries
            ]
        result = backend.execute(tasks, ctx.producer_assignment)
        result.raise_first_error()
        if self.n_jobs > 1:
            scheduler = self._make_scheduler()
            keys = ctx.get("producer_task_keys")
            if (
                scheduler.adaptive
                and keys is not None
                and result.task_times.size == len(keys)
            ):
                scheduler.observe(
                    result.task_times,
                    task_keys=keys,
                    weights=ctx.get("producer_task_weights"),
                )
        arena = ctx.get("arena")
        published = []
        bytes_published = 0
        for query, out in zip(sharing.queries, result.results):
            if ctx.kind == "fit":
                query.index, dist, idx = out
            else:
                dist, idx = out
            if arena is not None:
                pair = (
                    arena.share(dist, category="neighbors"),
                    arena.share(idx, category="neighbors"),
                )
            else:
                pair = (dist, idx)
            bytes_published += dist.nbytes + idx.nbytes
            published.append(pair)
        # The fused arrays now live in the arena / on the context; keep
        # the stage report light (reports survive release_data).
        result.results = [None] * len(result.results)
        ctx.shared_neighbors = published
        ctx.producer_result = result
        self._log(
            f"sharing: {len(sharing.queries)} producer(s) in "
            f"{result.wall_time:.3f}s, {bytes_published} bytes published"
        )
        return {
            "producers": len(sharing.queries),
            "producer_wall_s": result.wall_time,
            "bytes_published": bytes_published,
        }

    # -- fit stages ------------------------------------------------------
    def _fit_stage_project(self, ctx: PlanContext) -> dict:
        """RP: per-model feature spaces (Algorithm 1 lines 1-8)."""
        X = ctx.X
        n, d = X.shape
        m = self.n_models
        # Seeds are drawn once per plan and cached on the context, so a
        # reset() + re-run replays the exact same projectors and
        # estimator seeds instead of advancing the stateful Generator.
        if "rng_seeds" not in ctx:
            ctx.rng_seeds = spawn_seeds(ctx.rng, 2 * m)
        seeds = ctx.rng_seeds
        k = jl_target_dim(d, self.rp_target_fraction)
        rp_flags = np.zeros(m, dtype=bool)
        projectors = []
        for i, est in enumerate(self.base_estimators):
            use_rp = (
                self.rp_flag_global
                and family_of(est) not in RP_NG_FAMILIES
                and d >= self.rp_min_features
                and n >= self.rp_min_samples
                and k < d
            )
            rp_flags[i] = use_rp
            proj = (
                JLProjector(k, family=self.rp_method, random_state=seeds[i])
                if use_rp
                else NoProjection()
            )
            projectors.append(proj.fit(X))
        ctx.spaces = [proj.transform(X) for proj in projectors]
        self._log(
            f"RP: {int(rp_flags.sum())}/{m} models projected to k={k} "
            f"({self.rp_method})"
        )

        # Seed stochastic estimators deterministically.
        for i, est in enumerate(self.base_estimators):
            if hasattr(est, "random_state") and est.random_state is None:
                est.random_state = seeds[m + i]

        self.projectors_ = projectors
        self.rp_flags_ = rp_flags
        self.n_features_in_ = d
        return {
            "k": int(k),
            "n_projected": int(rp_flags.sum()),
            "rp_method": self.rp_method,
        }

    def _fit_stage_execute(self, ctx: PlanContext) -> dict:
        """BPS + execution (Algorithm 1 lines 9-13), as a two-wave DAG.

        Wave 0 (:meth:`_run_producer_wave`) runs the share stage's
        producers and publishes fused neighbor results; wave 1 runs one
        task per model, consumers binding their group's published pair.
        """
        # With the shm data plane, tasks bind tiny segment handles (the
        # runner materialised ctx.spaces into the arena); otherwise they
        # bind the arrays themselves.
        data = ctx.get("shared_spaces") or ctx.spaces
        backend = self._make_backend()
        producer_info = self._run_producer_wave(ctx, backend)
        sharing = ctx.get("sharing")
        consumer_of = sharing.consumer_of if sharing is not None else {}
        tasks = []
        for i, est in enumerate(self.base_estimators):
            qid = consumer_of.get(i)
            if qid is not None:
                dh, ih = ctx.shared_neighbors[qid]
                tasks.append(functools.partial(fit_one_shared, est, data[i], dh, ih))
            else:
                tasks.append(functools.partial(_fit_one, est, data[i]))
        result = backend.execute(tasks, ctx.assignment)
        result.raise_first_error()
        observed = self._observe_execution(ctx, result)
        self.base_estimators_ = list(result.results)
        # Consumers fitted from the fused result skipped their private
        # index build; hand every group its single shared index so
        # standalone re-scoring (and predict-time sharing) work as if
        # each had built its own.
        for i, qid in consumer_of.items():
            self.base_estimators_[i]._nn = sharing.queries[qid].index
        self.shared_index_ = (
            [q.index for q in sharing.queries] if sharing is not None else []
        )
        self.fit_assignment_ = ctx.assignment
        self.fit_result_ = result
        ctx.result = result
        self._log(f"fit wall time: {result.wall_time:.3f}s")
        merged = result
        if ctx.get("producer_result") is not None:
            merged = ExecutionResult.merge([ctx.producer_result, result])
        info = {"backend": self._effective_backend, "execution": merged}
        if producer_info is not None:
            info["sharing"] = producer_info
        if observed:
            info["telemetry_observed"] = observed
        return info

    def _fit_stage_approximate(self, ctx: PlanContext) -> dict:
        """PSA (Algorithm 1 lines 15-22)."""
        m = self.n_models
        if self.approx_flag_global:
            flags = [is_costly(est) for est in self.base_estimators_]
            regressor = self.approx_clf
            if regressor is None:
                from repro.supervised import RandomForestRegressor

                # Seed the default approximator so the whole pipeline is
                # reproducible under a fixed random_state; cached on the
                # context so reset() + re-run replays identically.
                if "approx_seed" not in ctx:
                    ctx.approx_seed = spawn_seeds(ctx.rng, 1)[0]
                regressor = RandomForestRegressor(random_state=ctx.approx_seed)
            self.approximators_ = fit_approximators(
                self.base_estimators_,
                ctx.spaces,
                regressor=regressor,
                approx_flags=flags,
            )
            self.approx_flags_ = np.array([a.approximated for a in self.approximators_])
            self._log(f"PSA: {int(self.approx_flags_.sum())}/{m} models approximated")
        else:
            self.approximators_ = [
                Approximator(est, enabled=False)
                for est in self.base_estimators_
            ]
            self.approx_flags_ = np.zeros(m, dtype=bool)
        return {"n_approximated": int(self.approx_flags_.sum())}

    def _fit_stage_combine(self, ctx: PlanContext) -> dict:
        self.train_score_matrix_ = np.stack(
            [est.decision_scores_ for est in self.base_estimators_]
        )
        std_train = self._standardise(self.train_score_matrix_)
        self.decision_scores_ = self._combine_pre(std_train)
        self.threshold_ = float(
            np.quantile(self.decision_scores_, 1.0 - self.contamination)
        )
        self.labels_ = (self.decision_scores_ > self.threshold_).astype(np.int64)
        return {
            "combination": self.combination,
            "standardisation": self.standardisation,
            "threshold": self.threshold_,
        }

    # -- predict stages --------------------------------------------------
    def _predict_stage_project(self, ctx: PlanContext) -> dict:
        ctx.spaces = [proj.transform(ctx.X) for proj in self.projectors_]
        return {"n_projected": int(self.rp_flags_.sum())}

    def _predict_stage_execute(self, ctx: PlanContext) -> dict:
        shared = ctx.get("shared_spaces")
        backend = self._make_backend()
        producer_info = self._run_producer_wave(ctx, backend)
        sharing = ctx.get("sharing")
        consumer_of = sharing.consumer_of if sharing is not None else {}

        def _pair(i):
            qid = consumer_of.get(i)
            if qid is None:
                return None
            return ctx.shared_neighbors[qid]

        if ctx.owners is not None:
            if shared is not None:
                # (model × chunk) through processes: ship (handle, slice)
                # and cut the row block off the attached view worker-side.
                tasks = []
                for i, sl in ctx.owners:
                    approx = self.approximators_[i]
                    pair = _pair(i)
                    if pair is not None:
                        tasks.append(
                            functools.partial(
                                score_slice_shared,
                                approx,
                                approx.detector,
                                shared[i],
                                sl,
                                *pair,
                            )
                        )
                    else:
                        tasks.append(
                            functools.partial(_score_slice, approx, shared[i], sl)
                        )
            else:
                tasks = []
                for i, sl in ctx.owners:
                    approx = self.approximators_[i]
                    pair = _pair(i)
                    if pair is not None:
                        # In-memory pairs are plain arrays: slice the row
                        # block parent-side, same as the space itself.
                        dist, idx = pair
                        tasks.append(
                            functools.partial(
                                score_one_shared,
                                approx,
                                approx.detector,
                                ctx.spaces[i][sl],
                                dist[sl],
                                idx[sl],
                            )
                        )
                    else:
                        tasks.append(
                            functools.partial(_score_one, approx, ctx.spaces[i][sl])
                        )
        else:
            data = shared if shared is not None else ctx.spaces
            tasks = []
            for i, approx in enumerate(self.approximators_):
                pair = _pair(i)
                if pair is not None:
                    tasks.append(
                        functools.partial(
                            score_one_shared, approx, approx.detector, data[i], *pair
                        )
                    )
                else:
                    tasks.append(functools.partial(_score_one, approx, data[i]))
        result = backend.execute(tasks, ctx.assignment)
        result.raise_first_error()
        observed = self._observe_execution(ctx, result)
        self.predict_result_ = result
        ctx.result = result
        n = ctx.X.shape[0]
        if ctx.owners is not None:
            ctx.matrix = scatter_chunk_results(
                result.results, ctx.owners, self.n_models, n
            )
            self._log(
                f"chunked scoring: {self.n_models} models x "
                f"{len(ctx.slices)} chunks (batch_size={self.batch_size}), "
                f"wall {result.wall_time:.3f}s"
            )
        else:
            ctx.matrix = np.stack(result.results)
        merged = result
        if ctx.get("producer_result") is not None:
            merged = ExecutionResult.merge([ctx.producer_result, result])
        info = {"backend": self._effective_backend, "execution": merged}
        if producer_info is not None:
            info["sharing"] = producer_info
        if observed:
            info["telemetry_observed"] = observed
        return info

    def _predict_stage_combine(self, ctx: PlanContext) -> dict:
        std = self._standardise(ctx.matrix, ref=self.train_score_matrix_)
        ctx.scores = self._combine_pre(std)
        return {
            "combination": self.combination,
            "standardisation": self.standardisation,
        }

    # ------------------------------------------------------------------
    def fit(self, X, y=None) -> "SUOD":
        """Fit the heterogeneous pool (Algorithm 1, training phase)."""
        plan = self.build_fit_plan(X)
        try:
            PlanRunner(verbose=False).run(plan)
        finally:
            # The plan stays inspectable on fit_plan_, but its copies of
            # X and the projected spaces are dropped — also when a stage
            # raises — so a long-lived estimator never pins the training
            # set in memory.
            plan.release_data()
        return self

    # ------------------------------------------------------------------
    def _standardise(self, matrix: np.ndarray, ref: np.ndarray | None = None):
        if self.standardisation == "zscore":
            return zscore_standardise(matrix, ref=ref)
        return ecdf_standardise(matrix, ref=ref)

    def _combine_pre(self, standardised_matrix: np.ndarray) -> np.ndarray:
        """Combine an already-standardised (m, l) score matrix."""
        if self.combination == "average":
            return standardised_matrix.mean(axis=0)
        if self.combination == "maximization":
            return standardised_matrix.max(axis=0)
        n_buckets = min(5, standardised_matrix.shape[0])
        return moa(
            standardised_matrix,
            n_buckets=n_buckets,
            standardise=False,
            random_state=0,
        )

    def decision_function_matrix(self, X) -> np.ndarray:
        """Raw (m, l) score matrix on new samples (one row per model).

        With ``batch_size`` set and more rows than the batch, the work is
        split into (model × row-chunk) tasks; otherwise each model scores
        all rows in one task. Either way, the returned matrix is
        identical — chunking changes the execution grain only.
        """
        plan = self.build_predict_plan(X)
        try:
            PlanRunner(verbose=False).run(plan, until="execute")
            return plan.context.matrix
        finally:
            plan.release_data()

    def decision_function(self, X) -> np.ndarray:
        """Combined outlyingness of new samples (larger = more outlying).

        Per-model scores are unified against each model's *training*
        distribution before combination, so heterogeneous scales stay
        comparable between train and test.
        """
        plan = self.build_predict_plan(X)
        try:
            PlanRunner(verbose=False).run(plan)
            return plan.context.scores
        finally:
            plan.release_data()

    def predict(self, X) -> np.ndarray:
        """Binary labels on new samples (1 = outlier).

        Test scores live on the same (train-referenced) scale as
        ``decision_scores_``, so the fit-time threshold applies directly.
        """
        return (self.decision_function(X) > self.threshold_).astype(np.int64)

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit and return training labels."""
        return self.fit(X).labels_

    # ------------------------------------------------------------------
    def merged_telemetry(self) -> ExecutionResult:
        """One combined wall-time/steal/idle summary over the last
        fit + predict executions (see :meth:`ExecutionResult.merge`)."""
        parts = [
            r
            for r in (
                getattr(self, "fit_result_", None),
                getattr(self, "predict_result_", None),
            )
            if r is not None
        ]
        return ExecutionResult.merge(parts)

    def __getstate__(self):
        # Plans and ExecutionResults are run telemetry, not model state:
        # predict_result_.results holds the per-task score arrays of the
        # last scored batch, so keeping it would make pickles scale with
        # whatever X was scored last. Pickles must not drag data along.
        state = self.__dict__.copy()
        for key in (
            "fit_plan_",
            "predict_plan_",
            "fit_result_",
            "predict_result_",
            # Backend instances may hold live worker pools — never pickle.
            "_backend_instance_",
            "_backend_key_",
        ):
            state.pop(key, None)
        return state

    def __repr__(self) -> str:
        sched = self.scheduler
        sched_name = sched.name if isinstance(sched, Scheduler) else sched
        return (
            f"SUOD(m={self.n_models}, rp={self.rp_flag_global}, "
            f"approx={self.approx_flag_global}, bps={self.bps_flag}, "
            f"scheduler={sched_name!r}, n_jobs={self.n_jobs}, "
            f"backend={self.backend!r}, batch_size={self.batch_size})"
        )
