"""Pseudo-Supervised Approximation — the PSA module (§3.4).

After an unsupervised detector is fitted, its training-set outlyingness
scores become "pseudo ground truth" for a fast supervised regressor; the
regressor then replaces the detector at prediction time. Only *costly*
detectors are approximated (the predefined pool ``M_c`` — proximity-based
models with O(n d) per-query cost); fast models (HBOS, iForest, ...) are
kept as-is because an approximator could not beat their prediction cost.
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.registry import is_costly
from repro.supervised import RandomForestRegressor
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["Approximator", "fit_approximators"]


class Approximator:
    """One detector/regressor pair.

    Wraps a *fitted* unsupervised detector. When approximation is active
    the regressor answers :meth:`decision_function`; otherwise calls fall
    through to the detector, so the pair is a drop-in scorer either way.

    Parameters
    ----------
    detector : fitted BaseDetector
    regressor : unfitted regressor prototype or None
        Cloned, then trained on ``(X_train, detector.decision_scores_)``.
        Default: :class:`repro.supervised.RandomForestRegressor`.
    enabled : bool
        Whether to actually approximate (callers typically pass
        ``is_costly(detector)``).
    """

    def __init__(self, detector: BaseDetector, regressor=None, *, enabled: bool = True):
        check_is_fitted(detector, "decision_scores_")
        self.detector = detector
        self.regressor_prototype = regressor
        self.enabled = enabled
        self.regressor_ = None

    @property
    def approximated(self) -> bool:
        """True when prediction is served by the supervised regressor."""
        return self.regressor_ is not None

    def fit(self, X_train) -> "Approximator":
        """Train the supervised stand-in on pseudo ground truth.

        ``X_train`` must be the same feature space the detector was
        fitted on (the projected space when RP is active — Algorithm 1
        line 19 trains on psi_i).
        """
        if not self.enabled:
            return self
        X_train = check_array(X_train, name="X_train")
        if X_train.shape[0] != self.detector.decision_scores_.shape[0]:
            raise ValueError(
                "X_train is not aligned with the detector's training scores"
            )
        proto = (
            self.regressor_prototype
            if self.regressor_prototype is not None
            else RandomForestRegressor()
        )
        self.regressor_ = copy.deepcopy(proto)
        self.regressor_.fit(X_train, self.detector.decision_scores_)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Outlyingness scores: regressor if trained, else the detector."""
        if self.approximated:
            return np.asarray(self.regressor_.predict(X), dtype=np.float64)
        return self.detector.decision_function(X)

    def __repr__(self) -> str:
        mode = "approximated" if self.approximated else "passthrough"
        return f"Approximator({type(self.detector).__name__}, {mode})"


def fit_approximators(
    detectors: Sequence[BaseDetector],
    X_trains: Sequence[np.ndarray] | np.ndarray,
    *,
    regressor=None,
    approx_flags: Sequence[bool] | None = None,
) -> list[Approximator]:
    """Build and train one :class:`Approximator` per fitted detector.

    Parameters
    ----------
    detectors : fitted detectors.
    X_trains : one array shared by all, or one per detector (each in the
        detector's own feature space, matching Algorithm 1).
    regressor : regressor prototype (cloned per detector).
    approx_flags : explicit per-detector overrides; default =
        :func:`repro.detectors.is_costly` (the paper's ``M_c`` rule).
    """
    detectors = list(detectors)
    if isinstance(X_trains, np.ndarray):
        X_list = [X_trains] * len(detectors)
    else:
        X_list = list(X_trains)
        if len(X_list) != len(detectors):
            raise ValueError("X_trains must align with detectors")
    if approx_flags is None:
        flags = [is_costly(det) for det in detectors]
    else:
        flags = list(approx_flags)
        if len(flags) != len(detectors):
            raise ValueError("approx_flags must align with detectors")

    out = []
    for det, X, flag in zip(detectors, X_list, flags):
        out.append(Approximator(det, regressor, enabled=flag).fit(X))
    return out
