"""Deprecated shim — the policies moved to :mod:`repro.scheduling`.

Kept so ``from repro.core.scheduling import bps_schedule`` (the pre-PR-4
import path) keeps working; importing this module emits a
:class:`DeprecationWarning`. New code should import from
:mod:`repro.scheduling` (or :mod:`repro.scheduling.policies`).
"""

import warnings

from repro.scheduling.policies import (
    bps_schedule,
    discounted_ranks,
    generic_schedule,
    karmarkar_karp_partition,
    lpt_partition,
    shuffle_schedule,
)

__all__ = [
    "generic_schedule",
    "shuffle_schedule",
    "bps_schedule",
    "lpt_partition",
    "karmarkar_karp_partition",
    "discounted_ranks",
]

warnings.warn(
    "repro.core.scheduling has moved to repro.scheduling "
    "(policies live in repro.scheduling.policies); "
    "this shim will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
