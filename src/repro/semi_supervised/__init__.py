"""Semi-supervised extension: XGBOD-style detection (paper future work).

The SUOD paper's future-work list includes demonstrating the framework
under "supervised XGBOD" (Zhao & Hryniewicki, IJCNN 2018): when *some*
labels exist, unsupervised detector scores become augmented features —
"unsupervised representation learning" — for a boosted supervised
model. :class:`XGBOD` implements that recipe on this library's own
substrate (heterogeneous pool for representations, gradient-boosted
trees for the supervised stage), and composes with SUOD's acceleration
modules for the representation pass.
"""

from repro.semi_supervised.xgbod import XGBOD

__all__ = ["XGBOD"]
