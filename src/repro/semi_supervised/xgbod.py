"""XGBOD: improving supervised outlier detection with unsupervised
representation learning (Zhao & Hryniewicki, 2018) — on this library's
substrate.

Recipe:

1. fit a pool of heterogeneous unsupervised detectors on the training
   data (optionally through :class:`repro.core.SUOD` for acceleration);
2. each detector's (train-referenced, standardised) score becomes one
   *transformed outlier score* (TOS) feature; optionally only the most
   label-correlated TOS are kept (the original paper's "accurate
   selection");
3. concatenate ``[X, TOS]`` and train a boosted-tree model on the known
   labels (least-squares boosting on 0/1 targets — the scores are then
   ranked, which is all the OD metrics need).

Prediction mirrors the transform: score new samples with the fitted
pool (through PSA approximators when SUOD provides them), append, and
run the supervised model.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.combination import ecdf_standardise
from repro.core.suod import SUOD
from repro.detectors.base import BaseDetector
from repro.metrics.correlation import pearsonr
from repro.supervised.gbm import GradientBoostingRegressor
from repro.utils.validation import check_array, check_is_fitted, column_or_1d

__all__ = ["XGBOD"]


class XGBOD:
    """Semi-supervised outlier detector with TOS feature augmentation.

    Parameters
    ----------
    base_estimators : sequence of BaseDetector
        Unsupervised pool used for representation learning.
    n_selected : int or None, default None
        Keep only the ``n_selected`` TOS features most correlated with
        the training labels (None keeps all).
    booster : regressor or None
        Supervised stage; default
        ``GradientBoostingRegressor(n_estimators=100, max_depth=3)``.
    use_suod : bool, default True
        Fit the pool through SUOD (RP off — TOS features must live in
        the original sample space per model semantics — PSA on for fast
        prediction, BPS per ``n_jobs``).
    n_jobs, random_state : forwarded to SUOD.

    Attributes
    ----------
    suod_ : fitted SUOD wrapper (when ``use_suod``)
    selected_tos_ : indices of kept TOS features
    booster_ : fitted supervised model
    decision_scores_, labels_, threshold_ : training outputs
    """

    def __init__(
        self,
        base_estimators: Sequence[BaseDetector],
        *,
        n_selected: int | None = None,
        booster=None,
        use_suod: bool = True,
        contamination: float = 0.1,
        n_jobs: int = 1,
        random_state=None,
    ):
        if not base_estimators:
            raise ValueError("base_estimators must be non-empty")
        if n_selected is not None and n_selected < 1:
            raise ValueError("n_selected must be >= 1 or None")
        if not 0.0 < contamination <= 0.5:
            raise ValueError("contamination must be in (0, 0.5]")
        self.base_estimators = list(base_estimators)
        self.n_selected = n_selected
        self.booster = booster
        self.use_suod = use_suod
        self.contamination = contamination
        self.n_jobs = n_jobs
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _tos_matrix(self, X, *, train: bool) -> np.ndarray:
        """(n, m) standardised transformed-outlier-score features."""
        if train:
            raw = self.suod_.train_score_matrix_
        else:
            raw = self.suod_.decision_function_matrix(X)
        U = ecdf_standardise(raw, ref=self.suod_.train_score_matrix_)
        return U.T  # (n, m)

    def fit(self, X, y) -> "XGBOD":
        """Fit on data with (possibly partial) labels.

        ``y`` is 0/1 with 1 = known outlier; unlabeled samples should be
        passed as 0 (the XGBOD assumption: unlabeled ~ inlier-dominated).
        """
        X = check_array(X, name="X")
        y = column_or_1d(np.asarray(y, dtype=np.float64), name="y")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if not np.all(np.isin(np.unique(y), (0.0, 1.0))):
            raise ValueError("y must be binary in {0, 1}")

        # Representation pass. RP stays off: each TOS must be a function
        # of the same input row for train and test alike, which SUOD
        # guarantees per model via its stored projectors — but original-
        # space scores keep the TOS interpretable as in XGBOD.
        self.suod_ = SUOD(
            self.base_estimators,
            rp_flag_global=False,
            approx_flag_global=True,
            bps_flag=self.n_jobs > 1,
            n_jobs=self.n_jobs,
            random_state=self.random_state,
        ).fit(X)
        tos = self._tos_matrix(X, train=True)

        # TOS selection by label correlation (the "accurate" selector).
        m = tos.shape[1]
        if self.n_selected is not None and self.n_selected < m:
            corr = np.array([abs(pearsonr(tos[:, j], y)) for j in range(m)])
            self.selected_tos_ = np.sort(
                np.argsort(-corr, kind="mergesort")[: self.n_selected]
            )
        else:
            self.selected_tos_ = np.arange(m)

        features = np.hstack([X, tos[:, self.selected_tos_]])
        self.booster_ = (
            self.booster
            if self.booster is not None
            else GradientBoostingRegressor(
                n_estimators=100, max_depth=3, random_state=self.random_state
            )
        )
        self.booster_.fit(features, y)

        self.decision_scores_ = np.asarray(self.booster_.predict(features))
        self.threshold_ = float(
            np.quantile(self.decision_scores_, 1.0 - self.contamination)
        )
        self.labels_ = (self.decision_scores_ > self.threshold_).astype(np.int64)
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Supervised outlyingness of new samples (larger = more outlying)."""
        check_is_fitted(self, "booster_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        tos = self._tos_matrix(X, train=False)
        features = np.hstack([X, tos[:, self.selected_tos_]])
        return np.asarray(self.booster_.predict(features))

    def predict(self, X) -> np.ndarray:
        """Binary outlier labels for new samples (1 = outlier)."""
        return (self.decision_function(X) > self.threshold_).astype(np.int64)
