"""The single execution path for every plan, on every backend.

:class:`PlanRunner` walks a plan's stages in order, skipping stages that
already carry a report (resume semantics), timing each one, and folding
any :class:`~repro.parallel.ExecutionResult` a stage produced into its
:class:`~repro.pipeline.stage.StageReport`. All SUOD passes — fit and
predict, sequential through work-stealing and shared-memory processes —
flow through this one loop, so backend behaviour and telemetry cannot
drift between call sites.

The runner also owns the shared-memory data plane's lifecycle: for a
plan with ``shm_keys``, it materialises the named context arrays into a
:class:`~repro.parallel.shm.SharedMemoryArena` immediately before the
``shm_stage`` (execute) runs, and disposes the arena — closing and
unlinking every segment — when the plan completes or any stage raises.
Plans stopped early (``until=``) keep their arena alive for resumption;
``plan.release_data()`` is the terminal cleanup for that path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.parallel.execution import ExecutionResult
from repro.pipeline.plan import ExecutionPlan, PlanContext
from repro.pipeline.stage import StageReport

__all__ = ["PlanRunner"]


class PlanRunner:
    """Sequences a plan's stages; records a StageReport per stage.

    Parameters
    ----------
    verbose : bool, default False
        Print a one-line summary per completed stage.
    """

    def __init__(self, *, verbose: bool = False):
        self.verbose = verbose

    def run(self, plan: ExecutionPlan, *, until: str | None = None) -> PlanContext:
        """Execute pending stages in order, stopping after ``until``.

        Stages that already have a report are skipped, so calling ``run``
        again on a partially executed plan resumes it. Returns the plan's
        context; telemetry accumulates in ``plan.reports``.
        """
        if until is not None and until not in plan.stage_names:
            raise ValueError(f"unknown stage {until!r}; plan has {plan.stage_names}")
        if getattr(plan, "_released", False) and not plan.is_complete:
            raise RuntimeError("plan context was released; build a new plan to run it")
        done = set(plan.completed)
        try:
            for stage in plan.stages:
                if stage.name in done:
                    if stage.name == until:
                        break
                    continue
                t0 = time.perf_counter()
                shm_info = None
                if plan.shm_keys and stage.name == plan.shm_stage:
                    shm_info = self._materialize(plan)
                info = stage.run(plan.context) or {}
                wall = time.perf_counter() - t0
                if not isinstance(info, dict):
                    raise TypeError(
                        f"stage {stage.name!r} must return a dict or None, "
                        f"got {type(info)}"
                    )
                if shm_info is not None:
                    info.setdefault("shm", shm_info)
                execution = info.pop("execution", None)
                if execution is not None and not isinstance(execution, ExecutionResult):
                    raise TypeError(
                        f"stage {stage.name!r} returned a non-ExecutionResult "
                        f"under 'execution': {type(execution)}"
                    )
                plan.reports.append(
                    StageReport(
                        stage=stage.name,
                        wall_time=wall,
                        info=info,
                        execution=execution,
                    )
                )
                if self.verbose:
                    extra = f" {info}" if info else ""
                    print(f"[plan:{plan.kind}] {stage.name}: {wall:.4f}s{extra}")
                if stage.name == until:
                    break
        except BaseException:
            # A failed stage must not leak shared segments: tear the
            # arena down before surfacing the error.
            plan.dispose_arena()
            raise
        if plan.is_complete:
            plan.dispose_arena()
        return plan.context

    def _materialize(self, plan: ExecutionPlan) -> dict:
        """Copy the plan's ``shm_keys`` context arrays into an arena.

        Each named key holds an ndarray or a list of ndarrays; handles
        land at ``shared_<key>`` on the context (mirroring the
        structure), where the execute-stage task builders pick them up.
        Identical array objects (e.g. unprojected spaces that are all
        ``X``) share one segment. Idempotent across resumes: keys that
        already have handles are left alone.
        """
        ctx = plan.context
        arena = ctx.get("arena")
        if arena is None:
            from repro.parallel.shm import SharedMemoryArena

            arena = ctx.arena = SharedMemoryArena()
        for key in plan.shm_keys:
            if ctx.get(f"shared_{key}") is not None:
                continue
            value = ctx.get(key)
            if value is None:
                continue
            if isinstance(value, np.ndarray):
                shared = arena.share(value)
            else:
                shared = arena.share_all(value)
            setattr(ctx, f"shared_{key}", shared)
        return {"segments": len(arena), "bytes": arena.total_bytes}
