"""The single execution path for every plan, on every backend.

:class:`PlanRunner` walks a plan's stages in order, skipping stages that
already carry a report (resume semantics), timing each one, and folding
any :class:`~repro.parallel.ExecutionResult` a stage produced into its
:class:`~repro.pipeline.stage.StageReport`. All SUOD passes — fit and
predict, sequential through work-stealing — flow through this one loop,
so backend behaviour and telemetry cannot drift between call sites.
"""

from __future__ import annotations

import time

from repro.parallel.execution import ExecutionResult
from repro.pipeline.plan import ExecutionPlan, PlanContext
from repro.pipeline.stage import StageReport

__all__ = ["PlanRunner"]


class PlanRunner:
    """Sequences a plan's stages; records a StageReport per stage.

    Parameters
    ----------
    verbose : bool, default False
        Print a one-line summary per completed stage.
    """

    def __init__(self, *, verbose: bool = False):
        self.verbose = verbose

    def run(self, plan: ExecutionPlan, *, until: str | None = None) -> PlanContext:
        """Execute pending stages in order, stopping after ``until``.

        Stages that already have a report are skipped, so calling ``run``
        again on a partially executed plan resumes it. Returns the plan's
        context; telemetry accumulates in ``plan.reports``.
        """
        if until is not None and until not in plan.stage_names:
            raise ValueError(f"unknown stage {until!r}; plan has {plan.stage_names}")
        if getattr(plan, "_released", False) and not plan.is_complete:
            raise RuntimeError("plan context was released; build a new plan to run it")
        done = set(plan.completed)
        for stage in plan.stages:
            if stage.name in done:
                if stage.name == until:
                    break
                continue
            t0 = time.perf_counter()
            info = stage.run(plan.context) or {}
            wall = time.perf_counter() - t0
            if not isinstance(info, dict):
                raise TypeError(
                    f"stage {stage.name!r} must return a dict or None, "
                    f"got {type(info)}"
                )
            execution = info.pop("execution", None)
            if execution is not None and not isinstance(execution, ExecutionResult):
                raise TypeError(
                    f"stage {stage.name!r} returned a non-ExecutionResult "
                    f"under 'execution': {type(execution)}"
                )
            plan.reports.append(
                StageReport(
                    stage=stage.name,
                    wall_time=wall,
                    info=info,
                    execution=execution,
                )
            )
            if self.verbose:
                extra = f" {info}" if info else ""
                print(f"[plan:{plan.kind}] {stage.name}: {wall:.4f}s{extra}")
            if stage.name == until:
                break
        return plan.context
