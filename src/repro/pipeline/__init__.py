"""Planner/executor layer: fit & predict as explicit stage pipelines.

The MLSys argument (and this repo's north star) is that ML-system
leverage lives in explicit, composable execution layers. This package is
that layer for SUOD:

- :class:`Stage` — a named, documented step over a shared context;
- :class:`ExecutionPlan` — an ordered stage program (project → forecast
  → share → schedule → execute → approximate → combine) with build-time
  metadata, renderable as table or JSON before anything runs;
- :mod:`repro.pipeline.sharing` — the plan-level CSE pass: the
  ``share`` stage folds redundant neighbor structures into shared
  producer tasks whose fused query results every consumer prefix-slices
  (bitwise-identical, see :class:`SharingPlan`);
- :class:`PlanRunner` — the single loop every backend runs through,
  with resume/partial-execution semantics;
- :class:`StageReport` — per-stage wall time plus worker-load /
  steal / idle telemetry folded up from
  :class:`~repro.parallel.ExecutionResult`.

:class:`repro.SUOD` is a façade over this package: its ``fit`` /
``decision_function`` compile plans via ``build_fit_plan`` /
``build_predict_plan`` and hand them to a runner. Downstream consumers
(CLI ``repro plan``, benchmark runners, serving/sharding work) operate
on the plan objects instead of re-implementing orchestration.
"""

from repro.pipeline.plan import ExecutionPlan, PlanContext
from repro.pipeline.runner import PlanRunner
from repro.pipeline.sharing import (
    SharedQuery,
    SharingPlan,
    derive_fit_sharing,
    derive_predict_sharing,
)
from repro.pipeline.stage import Stage, StageReport

__all__ = [
    "ExecutionPlan",
    "PlanContext",
    "PlanRunner",
    "SharedQuery",
    "SharingPlan",
    "Stage",
    "StageReport",
    "derive_fit_sharing",
    "derive_predict_sharing",
]
