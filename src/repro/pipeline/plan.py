"""Execution plans: an inspectable program for a fit or predict pass.

An :class:`ExecutionPlan` is an ordered list of :class:`Stage` objects
plus the :class:`PlanContext` they communicate through. Compiling SUOD's
fit/predict into plans (instead of method bodies) buys three things:

- **inspection** — ``describe()``/``to_dict()`` render the stages, the
  forecast costs and the chosen worker assignment before or after the
  run (the ``python -m repro plan`` subcommand);
- **partial execution** — a runner can stop after any stage (e.g. run
  only project → forecast → schedule to preview an assignment) and
  *resume* the same plan later; completed stages are never re-run;
- **uniform telemetry** — every stage leaves a
  :class:`~repro.pipeline.stage.StageReport`, and executions fold into
  one merged :class:`~repro.parallel.ExecutionResult` summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.execution import ExecutionResult
from repro.pipeline.stage import Stage, StageReport, jsonify

__all__ = ["ExecutionPlan", "PlanContext"]


class PlanContext:
    """Mutable namespace shared by the stages of one plan run.

    Attribute-style access with a dict-like ``get`` for optional keys;
    stages communicate exclusively through it, so a plan's data flow is
    visible in one place.
    """

    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)

    def get(self, name: str, default=None):
        return self.__dict__.get(name, default)

    def keys(self):
        return self.__dict__.keys()

    def __contains__(self, name: str) -> bool:
        return name in self.__dict__

    def __repr__(self) -> str:
        return f"PlanContext({', '.join(sorted(self.__dict__))})"


@dataclass
class ExecutionPlan:
    """An ordered stage program with its context and collected reports.

    Parameters
    ----------
    kind : {'fit', 'predict'}
        Which SUOD pass the plan encodes (free-form for other builders).
    stages : list of Stage
        Execution order. Stage names must be unique within a plan.
    context : PlanContext
        Shared mutable state; stage outputs (costs, assignment, matrix,
        scores, ...) accumulate here.
    meta : dict
        Static facts known at build time (backend, n_jobs, task grain).
    shm_keys : tuple of str
        Context keys (each an ndarray or a list of ndarrays) the runner
        materialises into a shared-memory arena right before
        ``shm_stage`` runs; the handles land at ``shared_<key>`` on the
        context. Empty (the default) means no shared data plane.
    shm_stage : str
        Stage name the materialisation precedes (default ``'execute'``).
    """

    kind: str
    stages: list[Stage]
    context: PlanContext
    meta: dict = field(default_factory=dict)
    reports: list[StageReport] = field(default_factory=list)
    shm_keys: tuple[str, ...] = ()
    shm_stage: str = "execute"

    def __post_init__(self):
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self._released = False

    # -- bookkeeping ---------------------------------------------------
    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    @property
    def completed(self) -> list[str]:
        return [r.stage for r in self.reports]

    @property
    def is_complete(self) -> bool:
        return len(self.reports) == len(self.stages)

    def report_for(self, name: str) -> StageReport | None:
        for r in self.reports:
            if r.stage == name:
                return r
        return None

    def reset(self) -> "ExecutionPlan":
        """Forget all reports so the plan can be replayed from scratch.

        Replaying a plan whose stages draw randomness is deterministic:
        builders cache seed draws on the context, so a reset + re-run
        reproduces the first run bitwise. Released plans (see
        :meth:`release_data`) can no longer be replayed.
        """
        if self._released:
            raise RuntimeError("plan context was released; build a new plan to re-run")
        self.reports = []
        return self

    _DATA_KEYS = ("X", "spaces", "matrix", "scores", "shared_neighbors")

    def release_data(self) -> "ExecutionPlan":
        """Drop the large data arrays from the context.

        Keeps scheduling telemetry (costs, assignment) and every stage
        report, so the plan remains fully inspectable — but it can no
        longer be resumed or replayed. Also disposes the shared-memory
        arena (closing and unlinking its segments) if the runner
        materialised one. The SUOD façade calls this when a fit/predict
        pass completes, so a long-lived estimator does not pin its
        training set (or the last scored batch) in memory; run plans
        through :class:`PlanRunner` yourself to keep the data.
        """
        self.dispose_arena()
        for key in self._DATA_KEYS:
            self.context.__dict__.pop(key, None)
        self._released = True
        return self

    def dispose_arena(self) -> "ExecutionPlan":
        """Tear down the shared-memory data plane, if one was built.

        Closes + unlinks every arena segment and drops the
        ``shared_<key>`` handle lists from the context. Idempotent; a
        no-op for plans that never materialised shared data. Called by
        the runner on plan completion and on any stage failure, and by
        :meth:`release_data`, so segments cannot outlive the plan run.
        """
        arena = self.context.get("arena")
        if arena is not None:
            arena.dispose()
            # Producer-wave results published into the arena (the share
            # stage's fused neighbor pairs) die with it.
            self.context.__dict__.pop("shared_neighbors", None)
        self.context.__dict__.pop("arena", None)
        for key in self.shm_keys:
            self.context.__dict__.pop(f"shared_{key}", None)
        return self

    # -- telemetry roll-up ---------------------------------------------
    @property
    def total_wall_time(self) -> float:
        return float(sum(r.wall_time for r in self.reports))

    def merged_execution(self) -> ExecutionResult:
        """One combined ExecutionResult over every backend-run stage."""
        parts = [r.execution for r in self.reports if r.execution is not None]
        return ExecutionResult.merge(parts)

    # -- rendering -----------------------------------------------------
    def describe(self) -> list[dict]:
        """One row per stage: status, wall time, key facts.

        Pending stages describe what they will do; done stages show the
        scalar facts of their info dict instead (the share stage's
        dedup summary, the schedule stage's policy, ...), so the CLI
        table reports what actually happened.
        """
        rows = []
        for stage in self.stages:
            report = self.report_for(stage.name)
            row = {
                "stage": stage.name,
                "status": "done" if report is not None else "pending",
                "wall_s": report.wall_time if report else float("nan"),
                "detail": stage.description,
            }
            if report is not None and report.info:
                facts = ", ".join(
                    f"{key}={value}"
                    for key, value in report.info.items()
                    if isinstance(value, (bool, int, float, str))
                )
                if facts:
                    row["detail"] = facts
            if report is not None and report.execution is not None:
                row["steals"] = report.total_steals
                row["idle_s"] = report.total_idle
            rows.append(row)
        return rows

    def assignment_rows(self, labels=None) -> list[dict]:
        """Per-task rows of forecast cost and assigned worker.

        ``labels`` optionally names each task (e.g. detector family).
        Empty until the plan's schedule stage has run.
        """
        assignment = self.context.get("assignment")
        if assignment is None:
            return []
        costs = self.context.get("costs")
        rows = []
        for i, worker in enumerate(np.asarray(assignment)):
            row = {"task": i, "worker": int(worker)}
            if labels is not None:
                row["label"] = labels[i]
            if costs is not None:
                row["forecast_cost"] = float(np.asarray(costs)[i])
            rows.append(row)
        return rows

    def worker_rows(self) -> list[dict]:
        """Per-worker planned load: task count and forecast cost sum."""
        assignment = self.context.get("assignment")
        if assignment is None:
            return []
        a = np.asarray(assignment)
        n_workers = int(self.meta.get("n_jobs", a.max(initial=0) + 1))
        counts = np.bincount(a, minlength=n_workers)
        rows = []
        costs = self.context.get("costs")
        loads = (
            np.bincount(a, weights=np.asarray(costs), minlength=n_workers)
            if costs is not None
            else None
        )
        for w in range(n_workers):
            row = {"worker": w, "n_tasks": int(counts[w])}
            if loads is not None:
                row["forecast_load"] = float(loads[w])
            rows.append(row)
        return rows

    def to_dict(self) -> dict:
        """JSON-able snapshot: stages, reports, costs, assignment."""
        costs = self.context.get("costs")
        assignment = self.context.get("assignment")
        return {
            "kind": self.kind,
            "meta": jsonify(self.meta),
            "stages": [
                {
                    "name": s.name,
                    "description": s.description,
                    "status": (
                        "done" if self.report_for(s.name) is not None else "pending"
                    ),
                }
                for s in self.stages
            ],
            "reports": [r.to_dict() for r in self.reports],
            "forecast_costs": jsonify(costs),
            "assignment": jsonify(assignment),
            "total_wall_time": self.total_wall_time,
        }

    def __repr__(self) -> str:
        done = len(self.reports)
        return (
            f"ExecutionPlan(kind={self.kind!r}, "
            f"stages=[{' -> '.join(self.stage_names)}], "
            f"completed={done}/{len(self.stages)})"
        )
