"""Stage primitives: the unit of work of an :class:`ExecutionPlan`.

A :class:`Stage` is a named, documented step operating on a shared
:class:`~repro.pipeline.plan.PlanContext`. Stages never call each other;
the :class:`~repro.pipeline.runner.PlanRunner` sequences them and wraps
every run in a :class:`StageReport` so a whole fit or predict pass can
be inspected as structured telemetry instead of log lines.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.execution import ExecutionResult

__all__ = ["Stage", "StageReport"]


def jsonify(value):
    """Recursively convert numpy containers/scalars to JSON-able types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


@dataclass(frozen=True)
class Stage:
    """One named step of an execution plan.

    Parameters
    ----------
    name : str
        Stable identifier (``run(plan, until=name)`` stops after it).
    run : callable(ctx) -> dict | None
        Performs the step against the shared plan context. May return an
        info dict for the stage's report; an ``"execution"`` key holding
        an :class:`ExecutionResult` is lifted onto the report so worker
        loads / steal / idle telemetry fold up automatically.
    description : str
        One line of human-readable intent, shown by ``repro plan``.
    """

    name: str
    run: Callable[..., dict | None]
    description: str = ""


@dataclass
class StageReport:
    """Outcome of one stage run: wall time plus structured telemetry.

    ``execution`` is populated for stages that pushed work through a
    parallel backend; scalar facts (counts, policy names, totals) land in
    ``info``.
    """

    stage: str
    wall_time: float = 0.0
    info: dict = field(default_factory=dict)
    execution: ExecutionResult | None = None

    @property
    def worker_times(self) -> np.ndarray:
        if self.execution is None:
            return np.zeros(0)
        return self.execution.worker_times

    @property
    def total_steals(self) -> int:
        return 0 if self.execution is None else self.execution.total_steals

    @property
    def total_idle(self) -> float:
        if self.execution is None or not self.execution.idle_times.size:
            return 0.0
        return float(self.execution.idle_times.sum())

    @property
    def task_times(self) -> np.ndarray:
        """Measured per-task durations of the backend run (empty if none).

        These are the observations the adaptive scheduling feedback loop
        consumes; surfacing them here keeps per-task telemetry reachable
        from a plan's reports alongside the worker-level aggregates.
        """
        if self.execution is None:
            return np.zeros(0)
        return self.execution.task_times

    @property
    def total_task_time(self) -> float:
        return float(self.task_times.sum()) if self.task_times.size else 0.0

    def to_dict(self) -> dict:
        out = {
            "stage": self.stage,
            "wall_time": float(self.wall_time),
            "info": jsonify(self.info),
        }
        if self.execution is not None:
            out["execution"] = {
                "wall_time": float(self.execution.wall_time),
                "worker_times": jsonify(self.execution.worker_times),
                "task_times": jsonify(self.execution.task_times),
                "idle_times": jsonify(self.execution.idle_times),
                "steal_counts": jsonify(self.execution.steal_counts),
                "n_tasks": len(self.execution.results),
            }
        return out
