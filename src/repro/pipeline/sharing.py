"""Cross-detector computation sharing: plan-level common-subexpression
elimination over neighbor structures.

Without it, every neighbor-based detector in a plan (KNN, LOF, LoOP,
ABOD) builds its *own* KD-tree over the exact same (sub)space and runs
its *own* k-NN query — m structures and m full queries where one of
each would do. This module rewrites the plan's task list into a
two-wave dependency DAG:

1. **Derivation** (the ``share`` stage, between ``forecast`` and
   ``schedule``): each neighbor consumer contributes a *resource key*
   ``(space identity, metric)`` — KD-tree structure identity — plus its
   ``k``; keys with two or more consumers fold their ``k``s to
   ``max(k_i)`` (+1 slack at fit time for self-exclusion) and become
   one :class:`SharedQuery` producer.
2. **Producer wave** (inside ``execute``): each producer builds the
   group's single KD-tree and answers one fused batched query at the
   shared width (:func:`repro.kernels.kdtree_query_maxk`). Producers
   are first-class scheduled tasks with their own cost forecasts
   (:func:`repro.scheduling.forecast_shared_query`) and task keys, so
   the adaptive scheduler arbitrates build-vs-score. Under the shm
   backend the parent publishes each ``(distance, index)`` result into
   the plan's arena as read-only :class:`SharedArrayHandle` pairs.
3. **Consumer wave**: every consuming detector's task binds its group's
   handles and slices its own ``k_i`` prefix
   (:func:`repro.kernels.slice_neighbor_prefix`) — bitwise-identical to
   a private query by the canonical tie-order contract, with
   self-exclusion applied per consumer at slice time.

Sharing is restricted to consumers whose resolved engine is the
KD-tree: brute force's ``argpartition`` tie order depends on ``k``, so
its results are not prefix-sliceable (see
:mod:`repro.kernels.neighbors`). Space identity is object identity —
the projection stage hands unprojected models the *same* validated
array object, while JL-projected spaces are per-model distinct, so
per-space keying can never cross spaces.

Derivation consumes no randomness and runs in O(m): plans with sharing
replay bitwise-identically and non-neighbor pools pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.neighbors import shared_query_width
from repro.neighbors.api import choose_engine
from repro.neighbors.shared import (
    build_shared_index,
    discard_shared_neighbors,
    fused_neighbor_query,
    push_shared_neighbors,
)
from repro.parallel import resolve_array

__all__ = [
    "SharedQuery",
    "SharingPlan",
    "derive_fit_sharing",
    "derive_predict_sharing",
]


@dataclass
class SharedQuery:
    """One producer task: a KD-tree (re)used by a group of consumers.

    ``space_index`` points at the representative model's slot in the
    plan's space list (every consumer in the group holds the identical
    array object). ``index`` is the fitted shared
    :class:`~repro.neighbors.NearestNeighbors`: pre-set at predict
    time (the fit-time injected index), filled in by the producer wave
    at fit time.
    """

    space_index: int
    consumers: list[int]
    ks: list[int]
    width: int
    cover_self: bool
    n_index: int
    n_query: int
    n_features: int
    metric: str = "euclidean"
    index: object | None = None

    @property
    def result_bytes(self) -> int:
        """Bytes of the fused (distance, index) pair this query yields."""
        return int(self.n_query) * int(self.width) * (8 + 8)


@dataclass
class SharingPlan:
    """The derived rewrite: producers plus the consumer → group map."""

    kind: str
    queries: list[SharedQuery]
    consumer_of: dict[int, int] = field(default_factory=dict)
    n_tasks: int = 0

    @property
    def active(self) -> bool:
        return bool(self.queries)

    def summary(self) -> dict:
        """The dedup ledger the ``share`` stage reports (and the plan
        CLI prints): task/structure counts before vs after the rewrite
        and the bytes the producer wave will publish."""
        n_consumers = len(self.consumer_of)
        return {
            "n_tasks_before": self.n_tasks,
            "n_tasks_after": self.n_tasks + len(self.queries),
            "structures_before": n_consumers if self.queries else 0,
            "structures_built": len(self.queries),
            "queries_fused": n_consumers,
            "bytes_published": sum(q.result_bytes for q in self.queries),
        }


def _neighbor_spec(est, n_samples: int, n_features: int):
    """The (k, metric) a detector would query with, iff KD-tree-backed.

    Returns None for non-neighbor detectors, non-KD-tree engines (no
    prefix-slice contract) and ``k`` outside the fit-valid range (the
    detector's own validation raises on the unshared path, keeping
    error behaviour identical).
    """
    request = getattr(est, "_neighbor_request", None)
    if request is None:
        return None
    spec = request()
    k = int(spec["n_neighbors"])
    metric = spec["metric"]
    engine = spec["algorithm"]
    if engine == "auto":
        engine = choose_engine(n_samples, n_features, metric)
    if engine != "kd_tree" or metric != "euclidean":
        return None
    if not 1 <= k <= n_samples - 1:
        return None
    return k, metric


def _group_consumers(models, spaces, specs) -> list[SharedQuery]:
    """Fold per-consumer resource keys into producer queries.

    ``specs[i]`` is ``(k, metric, index_rows)`` or None. Groups of one
    are dropped: a single consumer's private build is already optimal.
    """
    groups: dict[tuple[int, str], list[int]] = {}
    for i, spec in enumerate(specs):
        if spec is None:
            continue
        _k, metric, _rows = spec
        groups.setdefault((id(spaces[i]), metric), []).append(i)
    queries = []
    for (_sid, metric), members in groups.items():
        if len(members) < 2:
            continue
        rep = members[0]
        ks = [specs[i][0] for i in members]
        queries.append(
            SharedQuery(
                space_index=rep,
                consumers=members,
                ks=ks,
                width=0,  # filled by the caller (fit/predict widths differ)
                cover_self=False,
                n_index=specs[rep][2],
                n_query=int(spaces[rep].shape[0]),
                n_features=int(spaces[rep].shape[1]),
                metric=metric,
            )
        )
    return queries


def derive_fit_sharing(models, spaces) -> SharingPlan:
    """Resource-key pass over an unfitted pool: who can share at fit.

    Fit-time queries are self-excluded, so the fused width carries one
    slack column (``max(k_i) + 1``) and consumers drop their own row at
    slice time.
    """
    specs = []
    for est, space in zip(models, spaces):
        n, d = space.shape
        spec = _neighbor_spec(est, n, d)
        specs.append(None if spec is None else (spec[0], spec[1], n))
    queries = _group_consumers(models, spaces, specs)
    plan = SharingPlan(kind="fit", queries=queries, n_tasks=len(models))
    for qid, query in enumerate(queries):
        query.cover_self = True
        query.width = shared_query_width(query.ks, query.n_index, cover_self=True)
        for i in query.consumers:
            plan.consumer_of[i] = qid
    return plan


def derive_predict_sharing(approximators, spaces, n_tasks: int) -> SharingPlan:
    """Resource-key pass over a fitted pool: who can share at predict.

    Consumers are the *passthrough* scorers (PSA-approximated models
    never run neighbor queries at predict) whose fitted index is the
    KD-tree engine. Grouping keys on ``(index identity, space
    identity)``: detectors that shared a fit-time build hold the same
    injected index object, so the fit-time groups re-form with zero
    stored metadata — and independently fitted indexes never alias.
    """
    specs: list = []
    index_of: dict[int, object] = {}
    for approx, space in zip(approximators, spaces):
        det = getattr(approx, "detector", approx)
        if getattr(approx, "approximated", False):
            specs.append(None)
            continue
        nn = getattr(det, "_nn", None)
        n, d = space.shape
        request = getattr(det, "_neighbor_request", None)
        if nn is None or request is None or getattr(nn, "_engine", None) != "kd_tree":
            specs.append(None)
            continue
        k = int(request()["n_neighbors"])
        if not 1 <= k <= nn._X.shape[0]:
            specs.append(None)
            continue
        specs.append((k, "euclidean", int(nn._X.shape[0])))
        index_of[len(specs) - 1] = nn

    # Group key = (index identity, space identity): share the fused
    # query only among consumers binding the same tree to the same rows.
    groups: dict[tuple[int, int], list[int]] = {}
    for i, spec in enumerate(specs):
        if spec is None:
            continue
        groups.setdefault((id(index_of[i]), id(spaces[i])), []).append(i)
    plan = SharingPlan(kind="predict", queries=[], n_tasks=n_tasks)
    for members in groups.values():
        if len(members) < 2:
            continue
        rep = members[0]
        ks = [specs[i][0] for i in members]
        query = SharedQuery(
            space_index=rep,
            consumers=members,
            ks=ks,
            width=shared_query_width(ks, specs[rep][2]),
            cover_self=False,
            n_index=specs[rep][2],
            n_query=int(spaces[rep].shape[0]),
            n_features=int(spaces[rep].shape[1]),
            index=index_of[rep],
        )
        qid = len(plan.queries)
        plan.queries.append(query)
        for i in members:
            plan.consumer_of[i] = qid
    return plan


# ----------------------------------------------------------------------
# Task bodies (module-level: the process backends pickle them).
# ----------------------------------------------------------------------
def produce_fit_query(space, ks, metric: str):
    """Producer wave, fit plan: build the group's index, run the fused
    self-covering query. Returns ``(index, distances, indices)``."""
    X = resolve_array(space)
    nn = build_shared_index(X, metric=metric)
    dist, idx, _width = fused_neighbor_query(nn, X, ks, cover_self=True)
    return nn, dist, idx


def produce_predict_query(nn, space, ks):
    """Producer wave, predict plan: one fused query of the new rows
    against the fit-time shared index."""
    dist, idx, _width = fused_neighbor_query(nn, resolve_array(space), ks)
    return dist, idx


def fit_one_shared(est, space, dist, idx):
    """Consumer wave, fit plan: bind the fused result, slice, fit."""
    X = resolve_array(space)
    push_shared_neighbors(est, resolve_array(dist), resolve_array(idx), drop_self=True)
    try:
        return est.fit(X)
    finally:
        discard_shared_neighbors(est)


def score_one_shared(approx, target, space, dist, idx):
    """Consumer wave, predict plan: bind, slice, score.

    ``target`` is the estimator whose neighbor call consumes the stage
    (the approximator's wrapped detector); ``approx`` is the scorer the
    plan invokes, keeping passthrough semantics identical to the
    unshared :func:`~repro.core.suod._score_one` task.
    """
    X = resolve_array(space)
    push_shared_neighbors(
        target, resolve_array(dist), resolve_array(idx), drop_self=False
    )
    try:
        return approx.decision_function(X)
    finally:
        discard_shared_neighbors(target)


def score_slice_shared(approx, target, space, sl, dist, idx):
    """Chunked consumer: cut the row block off the attached views
    worker-side, then bind and score — ships (handle, slice) only."""
    X = resolve_array(space)[sl]
    push_shared_neighbors(
        target, resolve_array(dist)[sl], resolve_array(idx)[sl], drop_self=False
    )
    try:
        return approx.decision_function(X)
    finally:
        discard_shared_neighbors(target)
