"""Experiment runners regenerating every table and figure of the paper.

Each runner returns ``(rows, meta)`` where ``rows`` is a list of dicts
(one per printed table row) and ``meta`` records the active scaling
configuration. The ``benchmarks/`` files are thin wrappers that time the
runners and print the tables.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.config import BenchConfig
from repro.combination import ecdf_standardise, moa
from repro.scheduling import AnalyticCostModel, bps_schedule, generic_schedule
from repro.core.suod import SUOD
from repro.data import (
    load_benchmark,
    make_claims_dataset,
    make_fig3_toy,
    make_outlier_dataset,
    train_test_split,
)
from repro.data.benchmark import TABLE_A1
from repro.detectors import (
    ABOD,
    HBOS,
    KNN,
    LOF,
    AvgKNN,
    CBLOF,
    FeatureBagging,
    sample_model_pool,
)
from repro.metrics import makespan, precision_at_n, roc_auc_score
from repro.parallel import WorkStealingBackend, chunk_slices
from repro.pipeline import PlanRunner
from repro.projection import PROJECTION_METHODS, jl_target_dim, make_projector
from repro.supervised import RandomForestRegressor

__all__ = [
    "run_table1_projection",
    "run_psa_comparison",
    "run_table4_bps",
    "run_table5_full_system",
    "run_fig3_decision_surface",
    "run_claims_case",
    "run_dynamic_scheduling",
    "run_plan_overhead",
    "run_backend_scaling",
    "run_kernel_benchmarks",
    "run_sharing_benchmark",
    "run_memory_benchmark",
    "run_service_benchmark",
]


def _host_meta() -> dict:
    """Host facts stamped into every bench JSON meta.

    Includes the process's peak RSS so committed benchmark artifacts
    carry their memory footprint alongside their wall times (the
    memory-plane PR's acceptance evidence, but recorded everywhere so
    regressions in *any* runner's footprint show up in the bench
    trajectory). ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
    """
    import os
    import platform
    import sys

    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        peak_bytes = int(peak) * (1 if sys.platform == "darwin" else 1024)
    except ImportError:  # non-POSIX platform: no getrusage
        peak_bytes = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "peak_rss_bytes": peak_bytes,
    }


def _effective_scale(name: str, cfg: BenchConfig) -> float:
    n = TABLE_A1[name][0]
    return min(cfg.scale, cfg.max_n / n, 1.0)


def _load(name: str, cfg: BenchConfig, seed=None):
    return load_benchmark(name, scale=_effective_scale(name, cfg), random_state=seed)


def _safe_k(n_train: int, k: int) -> int:
    return max(2, min(k, n_train - 1))


# ---------------------------------------------------------------------------
# Table 1 — data compression methods
# ---------------------------------------------------------------------------
_T1_DATASETS = ("Cardio", "MNIST", "Satellite", "Satimage-2")


def _t1_detector(name: str, n: int):
    if name == "ABOD":
        return ABOD(n_neighbors=_safe_k(n, 10))
    if name == "LOF":
        return LOF(n_neighbors=_safe_k(n, 20))
    if name == "KNN":
        return KNN(n_neighbors=_safe_k(n, 10))
    raise ValueError(name)


def run_table1_projection(
    cfg: BenchConfig,
    *,
    datasets=_T1_DATASETS,
    detectors=("ABOD", "LOF", "KNN"),
    methods=PROJECTION_METHODS,
):
    """Table 1: execution time / ROC / P@N per compression method.

    Protocol (§4.1): the full (replica) dataset is used for model
    building; k = 2d/3; metrics computed on training scores.
    """
    rows = []
    for ds in datasets:
        for det_name in detectors:
            for method in methods:
                times, rocs, patns = [], [], []
                for trial in range(cfg.trials):
                    X, y = _load(ds, cfg, seed=trial)
                    k = jl_target_dim(X.shape[1])
                    t0 = time.perf_counter()
                    proj = make_projector(method, k, random_state=trial)
                    Z = proj.fit(X).transform(X)
                    det = _t1_detector(det_name, X.shape[0]).fit(Z)
                    times.append(time.perf_counter() - t0)
                    rocs.append(roc_auc_score(y, det.decision_scores_))
                    patns.append(precision_at_n(y, det.decision_scores_))
                rows.append(
                    {
                        "dataset": ds,
                        "detector": det_name,
                        "method": method,
                        "time": float(np.mean(times)),
                        "roc": float(np.mean(rocs)),
                        "patn": float(np.mean(patns)),
                    }
                )
    return rows, {"config": cfg.describe(), "k": "2d/3"}


# ---------------------------------------------------------------------------
# Tables 2 & 3 — pseudo-supervised approximation
# ---------------------------------------------------------------------------
_PSA_DATASETS = (
    "Annthyroid",
    "Breastw",
    "Cardio",
    "HTTP",
    "MNIST",
    "Pendigits",
    "Pima",
    "Satellite",
    "Satimage-2",
    "Thyroid",
)


def _psa_models(n_train: int):
    return {
        "ABOD": ABOD(n_neighbors=_safe_k(n_train, 10)),
        "CBLOF": CBLOF(n_clusters=min(8, max(2, n_train // 20)), random_state=0),
        "FB": FeatureBagging(n_estimators=5, random_state=0),
        "kNN": KNN(n_neighbors=_safe_k(n_train, 10)),
        "aKNN": AvgKNN(n_neighbors=_safe_k(n_train, 10)),
        "LOF": LOF(n_neighbors=_safe_k(n_train, 20)),
    }


def run_psa_comparison(cfg: BenchConfig, *, datasets=_PSA_DATASETS):
    """Tables 2 & 3: prediction ROC and P@N, original vs approximator.

    Protocol (§4.2): 60/40 split; the approximator is a random forest
    regressor trained on the detector's train-set scores; both score the
    held-out 40%.
    """
    rows = []
    for ds in datasets:
        per_model: dict[str, dict[str, list[float]]] = {}
        for trial in range(cfg.trials):
            X, y = _load(ds, cfg, seed=trial)
            Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=trial)
            if yte.sum() == 0 or yte.sum() == yte.size:  # degenerate split
                continue
            for name, det in _psa_models(Xtr.shape[0]).items():
                det.fit(Xtr)
                s_orig = det.decision_function(Xte)
                reg = RandomForestRegressor(
                    n_estimators=30, random_state=trial
                ).fit(Xtr, det.decision_scores_)
                s_appr = reg.predict(Xte)
                rec = per_model.setdefault(
                    name,
                    {"roc_o": [], "roc_a": [], "pn_o": [], "pn_a": []},
                )
                rec["roc_o"].append(roc_auc_score(yte, s_orig))
                rec["roc_a"].append(roc_auc_score(yte, s_appr))
                rec["pn_o"].append(precision_at_n(yte, s_orig))
                rec["pn_a"].append(precision_at_n(yte, s_appr))
        for name, rec in per_model.items():
            rows.append(
                {
                    "dataset": ds,
                    "model": name,
                    "roc_orig": float(np.mean(rec["roc_o"])),
                    "roc_appr": float(np.mean(rec["roc_a"])),
                    "patn_orig": float(np.mean(rec["pn_o"])),
                    "patn_appr": float(np.mean(rec["pn_a"])),
                }
            )
    return rows, {"config": cfg.describe()}


# ---------------------------------------------------------------------------
# Table 4 — balanced parallel scheduling
# ---------------------------------------------------------------------------
_T4_DATASETS = ("Cardio", "Letter", "PageBlock", "Pendigits")
_T4_FAMILIES = ("KNN", "IsolationForest", "HBOS", "OCSVM")


def _family_ordered_pool(m: int, n_train: int, seed: int):
    """The §3.5 pathology: equal blocks of each family, ordered by family
    (what a parameter-grid loop naturally produces)."""
    per = max(1, m // len(_T4_FAMILIES))
    pool = []
    for i, fam in enumerate(_T4_FAMILIES):
        pool.extend(
            sample_model_pool(
                per,
                families=[fam],
                max_n_neighbors=_safe_k(n_train, 100),
                random_state=seed + i,
            )
        )
    return pool


def run_table4_bps(
    cfg: BenchConfig,
    *,
    datasets=_T4_DATASETS,
    m_list=(40, 120),
    t_list=(2, 4, 8),
):
    """Table 4: training makespan, Generic vs BPS scheduling.

    Each model in a family-ordered pool is fitted once on the local core
    with its wall time recorded; the recorded costs are then replayed
    through t virtual workers under both schedules (the virtual makespan
    of :class:`repro.parallel.SimulatedClusterBackend`). BPS schedules on
    *forecast* costs (analytic model) and is evaluated on *measured*
    costs — exactly the paper's setting.
    """
    rows = []
    cost_model = AnalyticCostModel()
    for ds in datasets:
        X, _ = _load(ds, cfg, seed=0)
        n, d = X.shape
        for m in m_list:
            pool = _family_ordered_pool(m, n, seed=42)
            measured = np.empty(len(pool))
            for i, model in enumerate(pool):
                t0 = time.perf_counter()
                model.fit(X)
                measured[i] = time.perf_counter() - t0
            forecast = cost_model.forecast(pool, X)
            for t in t_list:
                gen = makespan(measured, generic_schedule(len(pool), t), t)
                bps = makespan(measured, bps_schedule(forecast, t), t)
                rows.append(
                    {
                        "dataset": ds,
                        "n": n,
                        "d": d,
                        "m": len(pool),
                        "t": t,
                        "generic": gen,
                        "bps": bps,
                        "redu_pct": 100.0 * (gen - bps) / gen if gen > 0 else 0.0,
                    }
                )
    return rows, {"config": cfg.describe(), "paper_m": "(100, 500, 1000)"}


# ---------------------------------------------------------------------------
# Dynamic scheduling — static (Generic/BPS) vs work stealing
# ---------------------------------------------------------------------------
def _ws_replay(costs: np.ndarray, assignment: np.ndarray, t: int):
    res = WorkStealingBackend(t).execute(
        [None] * costs.size, assignment, known_costs=costs
    )
    return res.wall_time, res.total_steals


def run_dynamic_scheduling(
    cfg: BenchConfig,
    *,
    m_list=(40, 120),
    t_list=(2, 4, 8),
    sigmas=(0.5, 1.5),
    chunk_factor: int = 4,
):
    """Static vs dynamic makespan on skewed synthetic cost pools.

    Pools draw per-task costs from a log-normal (``sigma`` controls the
    skew) and are sorted descending — the worst case for a contiguous
    split, and the shape a family-ordered model pool produces. BPS
    schedules on *noisy* forecasts (rank-correlated with the truth, as
    the cost predictor's are); every schedule is judged on true costs
    via deterministic virtual-clock replay:

    - ``generic`` / ``bps`` — static makespan of the assignment;
    - ``ws_gen`` / ``ws_bps`` — work-stealing replay seeded by the same
      assignment (steal counts show how much the forecast missed);
    - ``ws_chunk`` — work stealing after splitting every task into
      ``chunk_factor`` equal chunks (the SUOD ``batch_size`` grain);
    - ``ideal`` — the sum/t lower bound on any schedule.
    """
    rows = []
    for m in m_list:
        for sigma in sigmas:
            for t in t_list:
                fields = (
                    "generic",
                    "bps",
                    "ws_gen",
                    "ws_bps",
                    "ws_chunk",
                    "steals",
                    "ideal",
                )
                acc = {k: [] for k in fields}
                for trial in range(cfg.trials):
                    rng = np.random.default_rng(1000 * trial + m + int(10 * sigma))
                    true = np.sort(rng.lognormal(0.0, sigma, m))[::-1]
                    forecast = true * rng.lognormal(0.0, 0.5, m)
                    gen_a = generic_schedule(m, t)
                    bps_a = bps_schedule(forecast, t)
                    acc["generic"].append(makespan(true, gen_a, t))
                    acc["bps"].append(makespan(true, bps_a, t))
                    ws_g, steals = _ws_replay(true, gen_a, t)
                    ws_b, _ = _ws_replay(true, bps_a, t)
                    acc["ws_gen"].append(ws_g)
                    acc["ws_bps"].append(ws_b)
                    acc["steals"].append(steals)
                    chunked = np.repeat(true / chunk_factor, chunk_factor)
                    chunk_a = generic_schedule(chunked.size, t)
                    acc["ws_chunk"].append(_ws_replay(chunked, chunk_a, t)[0])
                    acc["ideal"].append(true.sum() / t)
                mean = {k: float(np.mean(v)) for k, v in acc.items()}
                mean.update(
                    m=m,
                    sigma=sigma,
                    t=t,
                    redu_pct=100.0 * (mean["generic"] - mean["ws_gen"])
                    / mean["generic"],
                )
                rows.append(mean)
    return rows, {
        "config": cfg.describe(),
        "chunk_factor": chunk_factor,
        "forecast_noise": "lognormal(0, 0.5) multiplicative",
    }


# ---------------------------------------------------------------------------
# Plan stage telemetry — per-stage wall times + planner overhead
# ---------------------------------------------------------------------------
def run_plan_overhead(
    cfg: BenchConfig, *, n_jobs: int = 4, backend: str = "work_stealing"
):
    """Per-stage timings of a planned fit + predict pass.

    Fits and scores a heterogeneous pool through the plan pipeline and
    reports one row per (phase, stage) with its wall time and share of
    the phase total, plus a ``(plan overhead)`` row per phase: the
    phase's end-to-end wall time minus the summed stage walls — i.e. the
    cost of the planner/executor machinery itself. ``overhead_pct``
    states that overhead relative to the execute stage's makespan; the
    refactor's contract is that it stays within noise (< 5%).
    """
    n = max(300, min(cfg.max_n, int(4000 * cfg.scale)))
    X, _ = make_outlier_dataset(
        n_samples=n, n_features=12, contamination=0.1, random_state=0
    )
    pool = sample_model_pool(
        max(8, cfg.n_models // 2),
        max_n_neighbors=_safe_k(n, 60),
        random_state=3,
    )
    clf = SUOD(pool, n_jobs=n_jobs, backend=backend, random_state=0)
    t0 = time.perf_counter()
    clf.fit(X)
    fit_total = time.perf_counter() - t0
    t0 = time.perf_counter()
    clf.decision_function(X)
    pred_total = time.perf_counter() - t0

    rows = []
    for phase, plan, total in (
        ("fit", clf.fit_plan_, fit_total),
        ("predict", clf.predict_plan_, pred_total),
    ):
        for report in plan.reports:
            rows.append(
                {
                    "phase": phase,
                    "stage": report.stage,
                    "wall_s": report.wall_time,
                    "share_pct": 100.0 * report.wall_time / total,
                    "steals": report.total_steals,
                }
            )
        stage_sum = plan.total_wall_time
        exec_wall = plan.report_for("execute").wall_time
        overhead = max(0.0, total - stage_sum)
        rows.append(
            {
                "phase": phase,
                "stage": "(plan overhead)",
                "wall_s": overhead,
                "share_pct": 100.0 * overhead / total,
                "overhead_pct": 100.0 * overhead / max(exec_wall, 1e-12),
            }
        )
    merged = clf.merged_telemetry()
    meta = {
        "config": cfg.describe(),
        "n": n,
        "m": len(pool),
        "n_jobs": n_jobs,
        "backend": backend,
        "combined_wall": merged.wall_time,
        "combined_steals": merged.total_steals,
        "combined_idle": float(merged.idle_times.sum()),
    }
    return rows, meta


# ---------------------------------------------------------------------------
# Table 5 — full system
# ---------------------------------------------------------------------------
_T5_DATASETS = (
    "Annthyroid",
    "Cardio",
    "MNIST",
    "Optdigits",
    "Pendigits",
    "Pima",
    "Shuttle",
    "SpamSpace",
    "Thyroid",
    "Waveform",
)


def _combined_metrics(clf: SUOD, Xte, yte):
    """Avg / MOA combination ROC and P@N on held-out data.

    Consumes the predict *plan* directly: runs it up to the execute
    stage (so the raw matrix is available before any combiner is fixed)
    and reads the scoring wall time off the stage report instead of
    re-implementing orchestration.
    """
    plan = clf.build_predict_plan(Xte)
    try:
        PlanRunner().run(plan, until="execute")
        M = plan.context.matrix
    finally:
        # Keep the stage reports (Table 5 reads task_times off them) but
        # drop Xte/spaces/matrix so looping over system variants does not
        # pin every variant's arrays simultaneously.
        plan.release_data()
    U = ecdf_standardise(M, ref=clf.train_score_matrix_)
    avg = U.mean(axis=0)
    m_oa = moa(U, n_buckets=min(5, U.shape[0]), standardise=False, random_state=0)
    out = {}
    out["roc_avg"] = roc_auc_score(yte, avg)
    out["roc_moa"] = roc_auc_score(yte, m_oa)
    out["patn_avg"] = precision_at_n(yte, avg)
    out["patn_moa"] = precision_at_n(yte, m_oa)
    return out, plan.report_for("execute").execution.wall_time


def run_table5_full_system(
    cfg: BenchConfig, *, datasets=_T5_DATASETS, t_list=(5, 10, 30)
):
    """Table 5: baseline vs full SUOD — fit/pred virtual time + accuracy.

    The pool is randomly sampled from Table B.1 (the paper's worst-case
    shuffled ordering). Each system fits its models **once** on the local
    core (the simulated backend records per-model costs); the measured
    costs are then replayed through every worker count in ``t_list``
    under the system's scheduling policy, so the reported times are
    virtual makespans without redundant refits.
    """
    rows = []
    cost_model = AnalyticCostModel()
    approx_clf = RandomForestRegressor(n_estimators=20, max_depth=10, random_state=0)
    for ds in datasets:
        X, y = _load(ds, cfg, seed=0)
        Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
        if yte.sum() == 0:
            continue
        per_system = {}
        for label, flags in (
            ("B", dict(rp_flag_global=False, approx_flag_global=False, bps_flag=False)),
            ("S", dict(rp_flag_global=True, approx_flag_global=True, bps_flag=True)),
        ):
            pool = sample_model_pool(
                cfg.n_models,
                max_n_neighbors=_safe_k(Xtr.shape[0], 100),
                random_state=7,
            )
            clf = SUOD(
                pool,
                n_jobs=1,  # fit once; parallel times replayed below
                approx_clf=approx_clf,
                random_state=0,
                **flags,
            )
            clf.fit(Xtr)
            fit_costs = clf.fit_plan_.report_for("execute").execution.task_times
            metrics, _ = _combined_metrics(clf, Xte, yte)
            pred_costs = clf.predict_plan_.report_for("execute").execution.task_times
            forecast = cost_model.forecast(clf.base_estimators_, Xtr)
            per_system[label] = (clf, fit_costs, pred_costs, forecast, metrics)

        for t in t_list:
            row = {"dataset": ds, "n": X.shape[0], "d": X.shape[1], "t": t}
            for label, system in per_system.items():
                clf, fit_costs, pred_costs, forecast, metrics = system
                m = len(fit_costs)
                if label == "S":  # BPS on forecast ranks
                    assignment = bps_schedule(forecast, t)
                else:  # generic contiguous split
                    assignment = generic_schedule(m, t)
                row[f"fit_{label}"] = makespan(fit_costs, assignment, t)
                row[f"pred_{label}"] = makespan(pred_costs, assignment, t)
                for key, value in metrics.items():
                    row[f"{key}_{label}"] = value
            rows.append(row)
    return rows, {"config": cfg.describe(), "paper_models": 600}


# ---------------------------------------------------------------------------
# Figure 3 — decision surfaces on the 2-D toy
# ---------------------------------------------------------------------------
def _count_errors(scores: np.ndarray, y: np.ndarray, contamination: float) -> int:
    thr = np.quantile(scores, 1.0 - contamination)
    pred = (scores > thr).astype(int)
    return int((pred != y).sum())


def _ascii_surface(score_fn, extent: float = 6.0, width: int = 48, height: int = 20):
    """Coarse ASCII rendering of a 2-D decision surface (score deciles)."""
    xs = np.linspace(-extent, extent, width)
    ys = np.linspace(-extent, extent, height)
    grid = np.array([[x, yv] for yv in ys for x in xs])
    s = score_fn(grid).reshape(height, width)
    chars = " .:-=+*#%@"
    ranks = np.digitize(s, np.quantile(s, np.linspace(0.1, 0.9, 9)))
    return "\n".join("".join(chars[v] for v in row) for row in ranks[::-1])


def run_fig3_decision_surface(cfg: BenchConfig):
    """Figure 3: error counts (and ASCII surfaces) for four unsupervised
    models vs their pseudo-supervised approximators on the 200-sample toy.
    """
    X, y = make_fig3_toy(random_state=0)
    contamination = float(y.mean())
    models = {
        "ABOD": ABOD(n_neighbors=10, contamination=contamination),
        "FeatureBagging": FeatureBagging(
            n_estimators=10, random_state=0, contamination=contamination
        ),
        "kNN": KNN(n_neighbors=10, contamination=contamination),
        "LOF": LOF(n_neighbors=10, contamination=contamination),
    }
    rows, surfaces = [], {}
    for name, det in models.items():
        det.fit(X)
        reg = RandomForestRegressor(n_estimators=50, random_state=0).fit(
            X, det.decision_scores_
        )
        err_orig = _count_errors(det.decision_function(X), y, contamination)
        err_appr = _count_errors(reg.predict(X), y, contamination)
        rows.append({"model": name, "errors_orig": err_orig, "errors_appr": err_appr})
        surfaces[name] = _ascii_surface(det.decision_function)
        surfaces[f"{name} approximator"] = _ascii_surface(reg.predict)
    return rows, {"config": cfg.describe(), "surfaces": surfaces}


# ---------------------------------------------------------------------------
# §4.5 — claims-fraud deployment case
# ---------------------------------------------------------------------------
def run_claims_case(cfg: BenchConfig, *, n_workers: int = 10):
    """The IQVIA-style deployment: full SUOD vs the current (baseline)
    system on the synthetic claims table, 10 workers, 60/40 split.
    """
    n = max(1000, int(123720 * min(cfg.scale, 4000 / 123720)))
    X, y = make_claims_dataset(n, random_state=0)
    Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
    out = {}
    for label, flags in (
        (
            "baseline",
            dict(rp_flag_global=False, approx_flag_global=False, bps_flag=False),
        ),
        ("suod", dict(rp_flag_global=True, approx_flag_global=True, bps_flag=True)),
    ):
        # Two timing passes per system; keep the faster one. Per-model
        # costs are measured live, so a single transient load spike on
        # the host would otherwise be attributed to whichever system
        # happened to be fitting at that moment.
        best = None
        for timing_pass in range(2):
            pool = sample_model_pool(
                max(10, cfg.n_models // 2),
                families=["KNN", "LOF", "HBOS", "IsolationForest", "CBLOF"],
                max_n_neighbors=_safe_k(Xtr.shape[0], 60),
                random_state=11,
            )
            clf = SUOD(
                pool,
                n_jobs=n_workers,
                backend="simulated",
                approx_clf=RandomForestRegressor(
                    n_estimators=20, max_depth=10, random_state=0
                ),
                random_state=0,
                **flags,
            ).fit(Xtr)
            metrics, pred_time = _combined_metrics(clf, Xte, yte)
            candidate = {
                "fit_time": clf.fit_result_.wall_time,
                "pred_time": pred_time,
                "roc": metrics["roc_avg"],
                "patn": metrics["patn_avg"],
            }
            if best is None or candidate["fit_time"] < best["fit_time"]:
                best = candidate
        out[label] = best
    b, s = out["baseline"], out["suod"]
    rows = [
        {"system": "baseline", **b},
        {"system": "suod", **s},
        {
            "system": "delta_pct",
            "fit_time": 100.0 * (b["fit_time"] - s["fit_time"]) / b["fit_time"],
            "pred_time": 100.0 * (b["pred_time"] - s["pred_time"]) / b["pred_time"],
            "roc": 100.0 * (s["roc"] - b["roc"]) / max(b["roc"], 1e-9),
            "patn": 100.0 * (s["patn"] - b["patn"]) / max(b["patn"], 1e-9),
        },
    ]
    return rows, {"config": cfg.describe(), "n_claims": n, "paper_n": 123720}


# ---------------------------------------------------------------------------
# Backend scaling — sequential vs threads vs work stealing vs processes
# vs shm processes, across worker counts (the perf trajectory benchmark)
# ---------------------------------------------------------------------------
SCALING_BACKENDS = (
    "sequential",
    "threads",
    "work_stealing",
    "processes",
    "shm_processes",
)


def _scaling_pool(n_models: int, seed: int) -> list:
    """A deliberately transport-bound pool for the scaling benchmark.

    HBOS scores at near-memcpy cost per byte (one ``searchsorted`` per
    feature), so the measured walls are dominated by what this
    benchmark is actually about — the execution engine's pool spawn,
    dispatch, and data-transport costs — rather than by model compute
    that no engine can parallelise away on a loaded host. A compute-
    heavy pool (kNN, ABOD) would bury a 50 ms transport regression
    under seconds of arithmetic. HBOS is also RP-exempt, which makes
    the shm plane's dedup visible: every space is the same ``X``
    object, materialised as one shared segment.
    """
    bin_counts = (10, 20, 30, 40)
    return [HBOS(n_bins=bin_counts[i % len(bin_counts)]) for i in range(n_models)]


def run_backend_scaling(
    cfg: BenchConfig,
    *,
    backends: tuple = SCALING_BACKENDS,
    worker_counts: tuple = (1, 2, 4),
    n_train: int = 3000,
    n_test: int = 24000,
    n_features: int = 16,
    n_models: int = 12,
    batch_size: int | None = None,
    repeats: int | None = None,
    predict_batches: int = 4,
    seed: int = 0,
):
    """Fit + predict wall clock for every backend × worker count.

    One long-lived estimator per configuration runs ``repeats`` full
    fit + predict passes; the reported walls are the per-phase minima
    (best-of), which is the stable statistic on a shared host. The
    predict phase scores the test set in ``predict_batches``
    consecutive row batches — the serving pattern the ROADMAP targets —
    so per-call engine costs (a pickling backend spawns its pool on
    *every* execute; a persistent pool stays warm) are weighted as a
    request stream weights them, not amortised into one giant call.
    Batch boundaries never change the numbers: per-row scoring is
    batch-separable, and the concatenated batch scores are compared
    bitwise against a single-pass sequential reference. Pools that
    persist across calls (``shm_processes``) keep their workers warm
    between batches and repeats — that persistence is part of what the
    benchmark measures. Every configuration's ``decision_scores_`` and
    test scores are checked bitwise against the sequential reference;
    a mismatch poisons the row (``identical=False``) and the meta flag.

    Returns rows of ``{backend, n_workers, fit_s, predict_s, total_s,
    speedup_vs_sequential, identical}`` plus a meta dict carrying the
    generating config, host facts, and the headline
    ``shm_speedup_vs_processes`` ratio at the largest worker count
    where both ran.
    """
    if repeats is None:
        repeats = max(2, cfg.trials)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if predict_batches < 1:
        raise ValueError("predict_batches must be >= 1")
    if not worker_counts or any(t < 1 for t in worker_counts):
        raise ValueError("worker_counts must be non-empty positive ints")
    Xtr, _ = make_outlier_dataset(
        n_train, n_features, contamination=0.1, random_state=seed
    )
    Xte, _ = make_outlier_dataset(
        n_test, n_features, contamination=0.1, random_state=seed + 1
    )

    def fresh_clf(backend: str, t: int) -> SUOD:
        return SUOD(
            _scaling_pool(n_models, seed),
            n_jobs=t,
            backend=backend,
            batch_size=batch_size,
            approx_flag_global=False,  # measure the engine, not PSA
            random_state=seed,
        )

    ref = fresh_clf("sequential", 1).fit(Xtr)
    ref_train = ref.decision_scores_
    ref_test = ref.decision_function(Xte)

    batch_rows = -(-n_test // max(1, predict_batches))
    batch_slices = chunk_slices(n_test, batch_rows)

    def serve(clf: SUOD) -> np.ndarray:
        if len(batch_slices) == 1:
            return clf.decision_function(Xte)
        return np.concatenate([clf.decision_function(Xte[sl]) for sl in batch_slices])

    configs = []
    for backend in backends:
        if backend == "sequential":
            configs.append((backend, 1))
        else:
            configs.extend((backend, t) for t in worker_counts if t > 1)

    rows = []
    all_identical = True
    for backend, t in configs:
        clf = fresh_clf(backend, t)
        fit_s = predict_s = float("inf")
        identical = True
        try:
            for _ in range(repeats):
                t0 = time.perf_counter()
                clf.fit(Xtr)
                fit_s = min(fit_s, time.perf_counter() - t0)
                t0 = time.perf_counter()
                scores = serve(clf)
                predict_s = min(predict_s, time.perf_counter() - t0)
                identical = (
                    identical
                    and np.array_equal(clf.decision_scores_, ref_train)
                    and np.array_equal(scores, ref_test)
                )
        finally:
            clf.close()
        all_identical = all_identical and identical
        rows.append(
            {
                "backend": backend,
                "n_workers": t,
                "fit_s": fit_s,
                "predict_s": predict_s,
                "total_s": fit_s + predict_s,
                "identical": identical,
            }
        )

    seq_total = next(r["total_s"] for r in rows if r["backend"] == "sequential")
    for r in rows:
        r["speedup_vs_sequential"] = seq_total / r["total_s"]

    def _total(backend: str, t: int) -> float | None:
        for r in rows:
            if r["backend"] == backend and r["n_workers"] == t:
                return r["total_s"]
        return None

    shm_vs_procs = None
    largest_t = None
    for t in sorted({r["n_workers"] for r in rows}, reverse=True):
        procs, shm = _total("processes", t), _total("shm_processes", t)
        if procs is not None and shm is not None:
            shm_vs_procs = procs / shm
            largest_t = t
            break

    meta = {
        "config": cfg.describe(),
        "benchmark": "backend_scaling",
        "n_train": n_train,
        "n_test": n_test,
        "n_features": n_features,
        "n_models": n_models,
        "batch_size": batch_size,
        "repeats": repeats,
        "predict_batches": predict_batches,
        "seed": seed,
        "worker_counts": list(worker_counts),
        "host": _host_meta(),
        "scores_identical": all_identical,
        "shm_speedup_vs_processes": shm_vs_procs,
        "shm_speedup_worker_count": largest_t,
    }
    return rows, meta


def run_kernel_benchmarks(
    cfg: BenchConfig,
    *,
    n_index: int = 8000,
    n_query: int = 3000,
    k_neighbors: int = 10,
    n_features: int = 6,
    iforest_train: int = 2048,
    n_trees: int = 100,
    serve_batch: int = 256,
    serve_batches: int = 32,
    ensemble_train: int = 1500,
    split_rows: int = 4000,
    split_features: int = 12,
    abod_queries: int = 3000,
    repeats: int | None = None,
    seed: int = 0,
):
    """Before/after microbenchmarks for every :mod:`repro.kernels` kernel.

    Each row times one hot-path kernel twice — through the frozen
    pre-refactor reference implementation
    (:mod:`repro.kernels.reference`) and through the vectorised batched
    path now on the production route — on the same data, and checks the
    outputs bitwise. Wall times are best-of-``repeats``. Scoring-shaped
    kernels (iForest, forest/GBM predict) run the serving pattern the
    execution plane produces: ``serve_batches`` consecutive batches of
    ``serve_batch`` rows, which is where eliminating per-tree Python
    dispatch pays (single bulk calls of many thousands of rows sit at
    parity — both formulations are bandwidth-bound there).

    Returns rows of ``{kernel, reference_s, vectorized_s, speedup,
    identical}`` plus a meta dict with the headline gates
    (``knn_query_speedup``, ``iforest_speedup``, ``all_identical``) —
    the format of ``BENCH_pr5.json`` and the CI bench-smoke artifact.
    """
    from repro.detectors import IsolationForest
    from repro.detectors.lof import _EPS as _LOF_EPS
    from repro.kernels import pairwise_angle_variance, reference
    from repro.neighbors import KDTree
    from repro.supervised import (
        DecisionTreeRegressor,
        GradientBoostingRegressor,
    )

    if repeats is None:
        repeats = max(2, cfg.trials)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rng = np.random.default_rng(seed)

    def best_of(fn):
        best, value = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return best, value

    rows = []

    def add_row(kernel, ref_fn, vec_fn, same_fn):
        ref_s, ref_out = best_of(ref_fn)
        vec_s, vec_out = best_of(vec_fn)
        rows.append(
            {
                "kernel": kernel,
                "reference_s": ref_s,
                "vectorized_s": vec_s,
                "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
                "identical": bool(same_fn(ref_out, vec_out)),
            }
        )

    def arrays_equal(a, b):
        return all(np.array_equal(x, y) for x, y in zip(a, b))

    # -- neighbor query: per-row heap search vs block-batched sweep ------
    X_index = rng.standard_normal((n_index, n_features))
    X_query = rng.standard_normal((n_query, n_features))
    tree = KDTree(X_index)
    add_row(
        "knn_query",
        lambda: reference.kdtree_query_heap(tree, X_query, k_neighbors),
        lambda: tree.query(X_query, k_neighbors, mode="batched"),
        arrays_equal,
    )

    # -- LOF scoring: the full detector on top of the query kernel ------
    lof = LOF(n_neighbors=k_neighbors, algorithm="kd_tree").fit(X_index)

    def lof_reference():
        dist, idx = reference.kdtree_query_heap(lof._nn._tree, X_query, k_neighbors)
        reach = np.maximum(dist, lof._kdist[idx])
        lrd_q = 1.0 / (reach.mean(axis=1) + _LOF_EPS)
        return lof._lrd[idx].mean(axis=1) / lrd_q

    add_row(
        "lof_scores",
        lof_reference,
        lambda: lof.decision_function(X_query),
        np.array_equal,
    )

    # -- iForest scoring: per-tree loop vs flat batched traversal, in
    # the consecutive-batch serving pattern ------------------------------
    iforest = IsolationForest(n_estimators=n_trees, random_state=seed).fit(
        rng.standard_normal((iforest_train, n_features))
    )
    serve = rng.standard_normal((serve_batches, serve_batch, n_features))
    add_row(
        "iforest_scoring",
        lambda: np.concatenate(
            [
                reference.iforest_score_loop(iforest._trees, iforest._sub, b)
                for b in serve
            ]
        ),
        lambda: np.concatenate([iforest.decision_function(b) for b in serve]),
        np.array_equal,
    )

    # -- forest / GBM prediction: per-tree loops vs flat traversal ------
    X_ens = rng.standard_normal((ensemble_train, n_features))
    y_ens = 2.0 * X_ens[:, 0] + np.sin(3.0 * X_ens[:, 1])
    forest = RandomForestRegressor(n_estimators=50, random_state=seed).fit(X_ens, y_ens)
    add_row(
        "forest_predict",
        lambda: np.concatenate(
            [reference.forest_predict_loop(forest, b) for b in serve]
        ),
        lambda: np.concatenate([forest.predict(b) for b in serve]),
        np.array_equal,
    )
    gbm = GradientBoostingRegressor(n_estimators=100, random_state=seed).fit(
        X_ens, y_ens
    )
    add_row(
        "gbm_predict",
        lambda: np.concatenate([reference.gbm_predict_loop(gbm, b) for b in serve]),
        lambda: np.concatenate([gbm.predict(b) for b in serve]),
        np.array_equal,
    )

    # -- CART split search: per-feature loop vs one 2-D pass ------------
    X_split = rng.integers(0, 6, size=(split_rows, split_features)).astype(np.float64)
    y_split = rng.standard_normal(split_rows)

    def fit_tree(engine):
        return DecisionTreeRegressor(split_search=engine, random_state=seed).fit(
            X_split, y_split
        )

    def trees_equal(a, b):
        return (
            a.n_nodes_ == b.n_nodes_
            and np.array_equal(a.feature_, b.feature_)
            and np.array_equal(a.threshold_, b.threshold_, equal_nan=True)
            and np.array_equal(a.children_left_, b.children_left_)
            and np.array_equal(a.children_right_, b.children_right_)
            and np.array_equal(a.value_, b.value_)
        )

    add_row(
        "tree_fit_split_search",
        lambda: fit_tree("loop"),
        lambda: fit_tree("vectorized"),
        trees_equal,
    )

    # -- ABOD angle variance: per-query loop vs chunked einsum ----------
    Q_abod = rng.standard_normal((abod_queries, n_features))
    idx_abod = rng.integers(0, n_index, size=(abod_queries, k_neighbors))
    add_row(
        "abod_angle_variance",
        lambda: reference.abod_scores_loop(Q_abod, X_index, idx_abod),
        lambda: -pairwise_angle_variance(Q_abod, X_index, idx_abod),
        np.array_equal,
    )

    by_kernel = {r["kernel"]: r for r in rows}
    meta = {
        "config": cfg.describe(),
        "benchmark": "compute_kernels",
        "n_index": n_index,
        "n_query": n_query,
        "k_neighbors": k_neighbors,
        "n_features": n_features,
        "iforest_train": iforest_train,
        "n_trees": n_trees,
        "serve_batch": serve_batch,
        "serve_batches": serve_batches,
        "ensemble_train": ensemble_train,
        "split_rows": split_rows,
        "split_features": split_features,
        "abod_queries": abod_queries,
        "repeats": repeats,
        "seed": seed,
        "host": _host_meta(),
        "all_identical": all(r["identical"] for r in rows),
        "knn_query_speedup": by_kernel["knn_query"]["speedup"],
        "iforest_speedup": by_kernel["iforest_scoring"]["speedup"],
    }
    return rows, meta


# ---------------------------------------------------------------------------
# Memory plane — mmap-backed artifacts vs inline pickles
# ---------------------------------------------------------------------------
def _memory_probe_child(path: str, rows_path: str, first_rows: int, conn) -> None:
    """Spawn-context child for :func:`run_memory_benchmark`.

    Loads the ensemble artifact, answers one first serving request (a
    small batch of ``first_rows`` rows — the stream-serving pattern),
    and sends back its cold-start wall times, peak RSS, and scores (for
    the parent's bitwise parity check). The child runs in a *fresh*
    interpreter (spawn context), so the recorded RSS is the artifact's
    true per-process serving footprint — a forked child would report
    the parent's inherited pages instead. This is where the two
    artifact modes diverge: the inline artifact unpickles every array
    through a private heap copy and rebuilds its flat serving caches on
    the first request, while the memmapped artifact attaches lazily and
    only ever faults the pages the request touches.
    """
    import os
    import resource
    import sys

    from repro.utils.persistence import load_ensemble

    def current_rss() -> int:
        # VmRSS *now*, not the getrusage high-water mark: interpreter
        # start-up spikes above steady state, so a peak-based delta
        # would read zero for any artifact smaller than that headroom.
        try:
            with open("/proc/self/statm") as fh:
                return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
        except (OSError, ValueError, IndexError):  # no procfs (not Linux)
            return 0

    unit = 1 if sys.platform == "darwin" else 1024  # ru_maxrss KB on Linux
    rss_before = current_rss()
    t0 = time.perf_counter()
    model = load_ensemble(path)
    load_s = time.perf_counter() - t0
    rows = np.load(rows_path)[:first_rows]
    t0 = time.perf_counter()
    scores = model.decision_function(rows)
    first_score_s = time.perf_counter() - t0
    rss_after = current_rss()
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit
    conn.send(
        {
            "load_s": load_s,
            "first_score_s": first_score_s,
            "peak_rss_bytes": int(peak),
            # Resident growth attributable to serving this artifact —
            # the interpreter/numpy baseline (identical across modes)
            # is subtracted out, so small artifacts stay measurable.
            "serving_rss_delta_bytes": int(rss_after - rss_before),
            "scores": scores,
        }
    )
    conn.close()


def _cold_start_round(
    ctx, path: str, rows_path: str, first_rows: int, workers: int
) -> list[dict]:
    """One cold-start measurement: ``workers`` fresh processes, all
    loading and scoring the same artifact concurrently."""
    procs, pipes = [], []
    for _ in range(workers):
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        p = ctx.Process(
            target=_memory_probe_child,
            args=(path, rows_path, first_rows, send_conn),
        )
        p.start()
        send_conn.close()
        procs.append(p)
        pipes.append(recv_conn)
    results = [c.recv() for c in pipes]
    for p in procs:
        p.join()
    for c in pipes:
        c.close()
    return results


# ---------------------------------------------------------------------------
# Shared-computation plane — fused neighbor producers vs redundant builds
# ---------------------------------------------------------------------------
def run_sharing_benchmark(
    cfg: BenchConfig,
    *,
    n_train: int = 6000,
    n_test: int = 3000,
    n_features: int = 8,
    repeats: int = 3,
    n_jobs: int = 4,
    seed: int = 0,
):
    """Shared-computation plane: one KD-tree + fused query vs m private.

    Fits the same pool of neighbor detectors (heterogeneous ``k``, one
    shared unprojected space) twice per backend — ``share_flag=True``
    (the ``share`` stage folds every build/query into one producer) and
    ``share_flag=False`` (each detector builds and queries privately) —
    and reports best-of-``repeats`` fit/predict walls.

    The gates the CI bench-smoke job enforces ride in the meta:

    - ``parity_ok`` — train score matrix, combined train scores, and
      the predict score matrix are bitwise-identical between the two
      modes on every backend (the prefix-slice contract's end-to-end
      form);
    - ``builds_ok`` — on the sequential backend the shared fit performs
      exactly ``distinct_keys`` KD-tree builds (one per distinct
      ``(space, metric)`` resource key) while the redundant fit
      performs one per consumer.

    ``fit_speedup``/``total_speedup`` (redundant wall over shared wall)
    are the headline numbers but are *not* gated — wall-clock on shared
    CI hosts is informational; BENCH_pr9.json records them from a quiet
    host.
    """
    from repro.detectors import LoOP
    from repro.neighbors import kdtree_build_count

    Xtr, _ = make_outlier_dataset(
        n_train, n_features, contamination=0.1, random_state=seed
    )
    Xte, _ = make_outlier_dataset(
        n_test, n_features, contamination=0.1, random_state=seed + 1
    )
    n = Xtr.shape[0]

    def make_pool():
        # Four consumers, heterogeneous k, all resolving to the KD-tree
        # engine over the same unprojected space -> one resource key.
        return [
            KNN(n_neighbors=_safe_k(n, 10)),
            AvgKNN(n_neighbors=_safe_k(n, 20)),
            LOF(n_neighbors=_safe_k(n, 25)),
            LoOP(n_neighbors=_safe_k(n, 15)),
        ]

    n_detectors = len(make_pool())
    distinct_keys = 1  # one space, one metric
    backends = (("sequential", 1), ("threads", n_jobs))
    rows = []
    reference: dict = {}
    builds: dict = {}
    sharing_info = None
    parity_ok = True
    for backend, jobs in backends:
        for mode, flag in (("shared", True), ("redundant", False)):
            best_fit = best_pred = float("inf")
            for _ in range(max(1, repeats)):
                clf = SUOD(
                    make_pool(),
                    n_jobs=jobs,
                    backend=backend,
                    share_flag=flag,
                    rp_flag_global=False,
                    approx_flag_global=False,
                    contamination=0.1,
                    random_state=seed,
                )
                b0 = kdtree_build_count()
                t0 = time.perf_counter()
                clf.fit(Xtr)
                fit_s = time.perf_counter() - t0
                b1 = kdtree_build_count()
                t0 = time.perf_counter()
                matrix = clf.decision_function_matrix(Xte)
                pred_s = time.perf_counter() - t0
                best_fit = min(best_fit, fit_s)
                best_pred = min(best_pred, pred_s)
            if backend == "sequential":
                builds[mode] = b1 - b0
                if flag:
                    sharing_info = clf.sharing_fit_info_
            key = (backend, "train")
            if key not in reference:
                reference[key] = (clf.train_score_matrix_, clf.decision_scores_)
                reference[(backend, "predict")] = matrix
            else:
                ref_matrix, ref_scores = reference[key]
                parity_ok = (
                    parity_ok
                    and np.array_equal(ref_matrix, clf.train_score_matrix_)
                    and np.array_equal(ref_scores, clf.decision_scores_)
                    and np.array_equal(reference[(backend, "predict")], matrix)
                )
            rows.append(
                {
                    "backend": backend,
                    "n_jobs": jobs,
                    "mode": mode,
                    "fit_s": round(best_fit, 4),
                    "predict_s": round(best_pred, 4),
                    "total_s": round(best_fit + best_pred, 4),
                }
            )

    by_mode = {
        (r["backend"], r["mode"]): r for r in rows
    }
    seq_shared = by_mode[("sequential", "shared")]
    seq_redundant = by_mode[("sequential", "redundant")]
    builds_ok = (
        builds.get("shared") == distinct_keys
        and builds.get("redundant") == n_detectors
    )
    meta = {
        "config": (
            f"{n_detectors} neighbor detectors on one ({n_train}, "
            f"{n_features}) space, best of {repeats}"
        ),
        "n_train": n_train,
        "n_test": n_test,
        "n_features": n_features,
        "n_detectors": n_detectors,
        "distinct_keys": distinct_keys,
        "kdtree_builds_shared": builds.get("shared"),
        "kdtree_builds_redundant": builds.get("redundant"),
        "sharing": sharing_info,
        "fit_speedup": round(seq_redundant["fit_s"] / seq_shared["fit_s"], 3),
        "total_speedup": round(
            seq_redundant["total_s"] / seq_shared["total_s"], 3
        ),
        "parity_ok": bool(parity_ok),
        "builds_ok": bool(builds_ok),
        "host": _host_meta(),
    }
    meta["gates_ok"] = meta["parity_ok"] and meta["builds_ok"]
    return rows, meta


def run_memory_benchmark(
    cfg: BenchConfig,
    *,
    n_train: int = 8000,
    n_test: int = 2000,
    n_features: int = 12,
    n_forests: int = 6,
    n_trees: int = 200,
    forest_subsample: int | str = 4096,
    workers: int = 2,
    first_rows: int = 64,
    repeats: int | None = None,
    seed: int = 0,
    artifact_dir: str | None = None,
):
    """Memory-plane benchmark: mmap-backed serving vs inline artifacts.

    Fits one SUOD pool (arena-heavy isolation forests plus KD-tree
    neighbor detectors), persists it twice — once with flat arenas
    externalised for ``np.memmap`` serving (``arenas=True``, the
    default) and once fully inline (``arenas=False``, the rebuild
    baseline) — and measures the cold-start path for each artifact:
    ``workers`` *fresh* spawn-context processes concurrently load the
    file and answer one small serving request (``first_rows`` rows),
    reporting per-process load wall, time-to-first-score, and peak
    RSS. Best-of-``repeats`` rounds. Cold start is ``load +
    first_score``: for the inline artifact that includes unpickling
    every array into a private heap copy and rebuilding the flat
    serving caches; the memmapped artifact attaches lazily and faults
    only the pages the request touches.

    The parity gates the CI bench-smoke job enforces ride in the meta:

    - ``memmap_bitwise`` — float64 scores served off the memmapped
      artifact are bitwise-identical to the in-RAM fitted model's;
    - ``float32_within_tolerance`` — float32 serving mode stays within
      :data:`repro.memory.FLOAT32_SCORE_ATOL` of float64, and restoring
      float64 is bitwise-exact (``float32_restore_bitwise``);
    - ``out_of_core_bitwise`` — chunked scoring of a memmapped row file
      under a memory budget far below the matrix size is
      bitwise-identical to one in-RAM pass;
    - ``workers_bitwise`` — every cold-start worker's scores matched.

    Returns one row per artifact mode plus a meta dict with the
    headline ``cold_start_speedup`` and ``peak_rss_ratio``
    (inline / memmap; > 1 means the memory plane wins) and the
    ``parity_ok`` conjunction of every gate above.
    """
    import os
    import tempfile
    from multiprocessing import get_context

    from repro.detectors import IsolationForest
    from repro.memory import (
        FLOAT32_SCORE_ATOL,
        open_rows,
        save_rows,
        score_out_of_core,
    )
    from repro.memory import set_serving_dtype
    from repro.utils.persistence import (
        load_ensemble,
        read_ensemble_header,
        save_ensemble,
    )

    if repeats is None:
        repeats = max(2, cfg.trials)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not 1 <= first_rows <= n_test:
        raise ValueError("first_rows must be in [1, n_test]")

    Xtr, _ = make_outlier_dataset(
        n_train, n_features, contamination=0.1, random_state=seed
    )
    Xte, _ = make_outlier_dataset(
        n_test, n_features, contamination=0.1, random_state=seed + 1
    )
    pool = [
        IsolationForest(
            n_estimators=n_trees,
            max_samples=forest_subsample,
            random_state=seed + i,
        )
        for i in range(n_forests)
    ]
    pool += [
        KNN(n_neighbors=_safe_k(n_train, 10)),
        LOF(n_neighbors=_safe_k(n_train, 15)),
    ]
    model = SUOD(
        pool,
        approx_flag_global=False,  # measure the detectors, not PSA
        random_state=seed,
    ).fit(Xtr)
    ref = model.decision_function(Xte)
    ref_first = model.decision_function(Xte[:first_rows])

    tmp = None
    if artifact_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_membench_")
        artifact_dir = tmp.name
    try:
        paths = {
            "memmap": save_ensemble(
                model, os.path.join(artifact_dir, "ens_arena.repro"), arenas=True
            ),
            "inline": save_ensemble(
                model, os.path.join(artifact_dir, "ens_inline.repro"), arenas=False
            ),
        }
        rows_path = os.path.join(artifact_dir, "probe_rows.npy")
        save_rows(Xte, rows_path)
        header = read_ensemble_header(paths["memmap"])

        # -- parity gates (parent process) -----------------------------
        served = load_ensemble(paths["memmap"])
        memmap_bitwise = bool(np.array_equal(served.decision_function(Xte), ref))
        set_serving_dtype(served, "float32")
        f32_diff = float(np.abs(served.decision_function(Xte) - ref).max())
        set_serving_dtype(served, "float64")
        restore_bitwise = bool(np.array_equal(served.decision_function(Xte), ref))
        # Budget far below the probe matrix: the ring must stream.
        budget = max(4096, int(Xte.nbytes) // 8)
        ooc = score_out_of_core(
            served, open_rows(rows_path), memory_budget_bytes=budget
        )
        ooc_bitwise = bool(np.array_equal(ooc, ref))

        # -- cold-start measurement (spawn children) -------------------
        ctx = get_context("spawn")
        rows_out = []
        for mode, path in paths.items():
            load_best = score_best = float("inf")
            rss_samples: list[int] = []
            delta_samples: list[int] = []
            identical = True
            for _ in range(repeats):
                round_res = _cold_start_round(
                    ctx, path, rows_path, first_rows, workers
                )
                for res in round_res:
                    load_best = min(load_best, res["load_s"])
                    score_best = min(score_best, res["first_score_s"])
                    rss_samples.append(res["peak_rss_bytes"])
                    delta_samples.append(res["serving_rss_delta_bytes"])
                    identical = identical and np.array_equal(
                        res["scores"], ref_first
                    )
            rows_out.append(
                {
                    "mode": mode,
                    "workers": workers,
                    "load_s": load_best,
                    "first_score_s": score_best,
                    "cold_total_s": load_best + score_best,
                    "peak_rss_bytes": int(np.mean(rss_samples)),
                    "serving_rss_delta_bytes": int(np.mean(delta_samples)),
                    "artifact_bytes": os.path.getsize(path),
                    "identical": identical,
                }
            )
    finally:
        if tmp is not None:
            tmp.cleanup()

    by_mode = {r["mode"]: r for r in rows_out}
    workers_bitwise = all(r["identical"] for r in rows_out)
    parity_ok = (
        memmap_bitwise
        and f32_diff <= FLOAT32_SCORE_ATOL
        and restore_bitwise
        and ooc_bitwise
        and workers_bitwise
    )
    meta = {
        "config": cfg.describe(),
        "benchmark": "memory_plane",
        "n_train": n_train,
        "n_test": n_test,
        "n_features": n_features,
        "n_forests": n_forests,
        "n_trees": n_trees,
        "forest_subsample": forest_subsample,
        "workers": workers,
        "first_rows": first_rows,
        "repeats": repeats,
        "seed": seed,
        "schema_version": header["schema_version"],
        "arena_count": len(header["arenas"]),
        "arena_bytes": int(sum(s["nbytes"] for s in header["arenas"])),
        "artifact_bytes": {m: r["artifact_bytes"] for m, r in by_mode.items()},
        "probe_matrix_bytes": int(Xte.nbytes),
        "out_of_core_budget_bytes": budget,
        "cold_start_speedup": (
            by_mode["inline"]["cold_total_s"] / by_mode["memmap"]["cold_total_s"]
        ),
        "peak_rss_ratio": (
            by_mode["inline"]["peak_rss_bytes"] / by_mode["memmap"]["peak_rss_bytes"]
        ),
        "serving_rss_delta_ratio": (
            by_mode["inline"]["serving_rss_delta_bytes"]
            / max(1, by_mode["memmap"]["serving_rss_delta_bytes"])
        ),
        "memmap_bitwise": memmap_bitwise,
        "float32_max_abs_diff": f32_diff,
        "float32_tolerance": FLOAT32_SCORE_ATOL,
        "float32_within_tolerance": bool(f32_diff <= FLOAT32_SCORE_ATOL),
        "float32_restore_bitwise": restore_bitwise,
        "out_of_core_bitwise": ooc_bitwise,
        "workers_bitwise": workers_bitwise,
        "parity_ok": bool(parity_ok),
        "host": _host_meta(),
    }
    return rows_out, meta


# ---------------------------------------------------------------------------
# Serving plane — micro-batched scoring service vs per-request
# ---------------------------------------------------------------------------
class _ServeProcess:
    """One ``python -m repro serve`` child, booted from a saved artifact.

    The READY line is parsed off stdout to learn the OS-assigned port; a
    reader thread keeps draining stdout so the child never blocks on a
    full pipe, and the captured lines let :meth:`shutdown` verify the
    DRAINED line that proves a clean SIGTERM drain.
    """

    READY_RE = r"^REPRO-SERVE READY .*port=(\d+)"

    def __init__(self, artifact: str, extra_args: list[str], *, timeout: float = 60.0):
        import os
        import subprocess
        import sys
        import threading
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        self.timeout = timeout
        self.lines: list[str] = []
        self._ready = threading.Event()
        self._port: int | None = None
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve"]
            + ["--artifact", artifact, *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._reader = threading.Thread(target=self._drain_stdout, daemon=True)
        self._reader.start()

    def _drain_stdout(self) -> None:
        import re

        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))
            match = re.match(self.READY_RE, line)
            if match:
                self._port = int(match.group(1))
                self._ready.set()
        self._ready.set()  # EOF: wake a waiter even if READY never came

    @property
    def port(self) -> int:
        if not self._ready.wait(self.timeout):
            self.proc.kill()
            raise RuntimeError("serve process never printed its READY line")
        if self._port is None:
            raise RuntimeError(
                "serve process exited before READY:\n" + "\n".join(self.lines)
            )
        return self._port

    def shutdown(self) -> bool:
        """SIGTERM, wait, and report whether the drain was clean."""
        import signal
        import subprocess

        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=self.timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            return False
        self._reader.join(timeout=self.timeout)
        drained = any(line.startswith("REPRO-SERVE DRAINED") for line in self.lines)
        return code == 0 and drained

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


class _ClientWorker:
    """One benchmark client: a connection driving its share of requests.

    Thread target is the bound :meth:`run`; results land on the instance
    (each worker owns its own lists), and the driver reads them only
    after ``join()``.
    """

    def __init__(self, host, port, X, slices, refs, *, tenant="bench", timeout=60.0):
        self.host = host
        self.port = port
        self.X = X
        self.slices = slices
        self.refs = refs
        self.tenant = tenant
        self.timeout = timeout
        self.latencies_s: list[float] = []
        self.rejected: list[int] = []
        self.mismatched: list[int] = []
        self.error: str | None = None

    def run(self) -> None:
        from repro.serving import ScoringClient

        try:
            with ScoringClient(
                self.host, self.port, tenant=self.tenant, timeout=self.timeout
            ) as client:
                for idx, (start, stop) in self.slices:
                    t0 = time.perf_counter()
                    reply = client.score(self.X[start:stop])
                    self.latencies_s.append(time.perf_counter() - t0)
                    if not reply.ok:
                        self.rejected.append(reply.code)
                    elif not np.array_equal(reply.scores, self.refs[idx]):
                        self.mismatched.append(idx)
        except Exception as exc:  # surfaced by the driver, not swallowed
            self.error = f"{type(exc).__name__}: {exc}"


def _drive_service_mode(
    host, port, X, request_slices, refs, clients, hot_requests, rows_per_request
):
    """Run the measured workload plus the over-limit tenant burst."""
    import threading

    workers = [
        _ClientWorker(
            host,
            port,
            X,
            [(i, s) for i, s in enumerate(request_slices) if i % clients == w],
            refs,
            tenant=f"bench-{w}",
        )
        for w in range(clients)
    ]
    threads = [threading.Thread(target=w.run) for w in workers]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    errors = [w.error for w in workers if w.error]
    if errors:
        raise RuntimeError(f"benchmark client failed: {errors[0]}")

    # Over-limit tenant: a post-measurement burst against a 1 req/s
    # bucket — everything past the first token must see a 429.
    hot = _ClientWorker(
        host,
        port,
        X,
        [(0, (0, rows_per_request))] * hot_requests,
        refs,
        tenant="hot",
    )
    hot.run()
    if hot.error:
        raise RuntimeError(f"over-limit tenant client failed: {hot.error}")

    latencies = np.array(
        [lat for w in workers for lat in w.latencies_s], dtype=np.float64
    )
    n_ok = int(latencies.size) - sum(len(w.rejected) for w in workers)
    return {
        "wall_s": wall_s,
        "n_ok": n_ok,
        "measured_rejections": sum(len(w.rejected) for w in workers),
        "mismatched": sum(len(w.mismatched) for w in workers),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "hot_rejections": len(hot.rejected),
        "hot_rejection_codes": sorted(set(hot.rejected)),
        "hot_mismatched": len(hot.mismatched),
    }


def run_service_benchmark(
    cfg: BenchConfig,
    *,
    n_train: int = 2000,
    n_features: int = 12,
    n_models: int = 6,
    n_trees: int = 100,
    forest_subsample: int | str = 2048,
    requests: int = 960,
    rows_per_request: int = 1,
    clients: int = 16,
    hot_requests: int = 8,
    batch_wait_ms: float = 6.0,
    seed: int = 0,
    artifact_dir: str | None = None,
):
    """Serving-plane benchmark: micro-batched service vs per-request.

    Fits one SUOD pool, saves it as a v2 artifact, and boots **real**
    ``python -m repro serve`` processes from it twice: once with
    micro-batching live (cost-model-sized batches, ``batch_wait_ms``
    coalescing window) and
    once degraded to per-request execution (``--batch-max-rows 1
    --batch-wait-ms 0`` — every batch is exactly one request, the
    classic request-per-call baseline). Each mode serves the same
    workload: ``clients`` concurrent connections round-robin
    ``requests`` scoring requests of ``rows_per_request`` rows, then an
    over-limit tenant (token bucket pinned to 1 req/s via
    ``--tenant-limit hot=1:1``) fires a burst that must be 429'd.

    The gates the CI service-smoke job enforces ride in the meta:

    - ``parity_ok`` — every served score vector in **both** modes is
      bitwise-identical to an offline ``decision_function`` call on the
      same rows (micro-batching changes the execution grain, never the
      bytes);
    - ``rate_limit_ok`` — the over-limit tenant saw at least one 429
      and the measured tenants saw none;
    - ``clean_shutdown`` — both servers exited 0 on SIGTERM after
      printing their DRAINED line (every accepted request answered).

    ``throughput_speedup`` (micro-batch requests/s over per-request) is
    the headline number but is *not* gated — wall-clock on shared CI
    hosts is informational; BENCH_pr8.json records it from a quiet
    host.
    """
    import os
    import tempfile

    from repro.detectors import IsolationForest
    from repro.utils.persistence import load_ensemble, save_ensemble

    if requests < clients or clients < 1:
        raise ValueError("need requests >= clients >= 1")
    if rows_per_request < 1:
        raise ValueError("rows_per_request must be >= 1")

    Xtr, _ = make_outlier_dataset(
        n_train, n_features, contamination=0.1, random_state=seed
    )
    X, _ = make_outlier_dataset(
        requests * rows_per_request,
        n_features,
        contamination=0.1,
        random_state=seed + 1,
    )
    pool = [
        IsolationForest(
            n_estimators=n_trees,
            max_samples=forest_subsample,
            random_state=seed + i,
        )
        for i in range(max(1, n_models - 2))
    ]
    pool += [
        KNN(n_neighbors=_safe_k(n_train, 10)),
        LOF(n_neighbors=_safe_k(n_train, 15)),
    ]
    model = SUOD(
        pool,
        approx_flag_global=False,
        random_state=seed,
    ).fit(Xtr)

    tmp = None
    if artifact_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_servicebench_")
        artifact_dir = tmp.name
    modes = {
        "micro-batch": ["--batch-wait-ms", str(batch_wait_ms)],
        "per-request": ["--batch-max-rows", "1", "--batch-wait-ms", "0"],
    }
    common_args = [
        "--port",
        "0",
        "--rate",
        "100000",
        "--burst",
        "100000",
        "--tenant-limit",
        "hot=1:1",
    ]
    rows_out = []
    results = {}
    clean = {}
    try:
        path = save_ensemble(model, os.path.join(artifact_dir, "ens_service.repro"))
        artifact_bytes = os.path.getsize(path)

        # Per-request offline baseline: the bytes each request would get
        # from its own decision_function call (served from the same
        # artifact the server loads).
        offline = load_ensemble(path)
        request_slices = [
            (i * rows_per_request, (i + 1) * rows_per_request)
            for i in range(requests)
        ]
        refs = [
            offline.decision_function(X[start:stop])
            for start, stop in request_slices
        ]

        for mode, mode_args in modes.items():
            server = _ServeProcess(path, common_args + mode_args)
            try:
                port = server.port
                res = _drive_service_mode(
                    "127.0.0.1",
                    port,
                    X,
                    request_slices,
                    refs,
                    clients,
                    hot_requests,
                    rows_per_request,
                )
                from repro.serving import ScoringClient

                with ScoringClient("127.0.0.1", port, tenant="stats") as sc:
                    res["server_stats"] = sc.stats()
            except BaseException:
                server.kill()
                raise
            clean[mode] = server.shutdown()
            results[mode] = res
            batcher = res["server_stats"].get("batcher", {})
            rows_out.append(
                {
                    "mode": mode,
                    "requests_ok": res["n_ok"],
                    "rejected": res["measured_rejections"],
                    "wall_s": res["wall_s"],
                    "requests_per_s": res["n_ok"] / res["wall_s"],
                    "p50_ms": res["p50_ms"],
                    "p99_ms": res["p99_ms"],
                    "batches": batcher.get("batches", 0),
                    "batch_rows_mean": round(batcher.get("batch_rows_mean", 0.0), 1),
                    "identical": res["mismatched"] == 0 and res["hot_mismatched"] == 0,
                }
            )
    finally:
        if tmp is not None:
            tmp.cleanup()

    by_mode = {r["mode"]: r for r in rows_out}
    parity_ok = all(r["identical"] for r in rows_out)
    limited_rejections = sum(  # repro: allow[unordered-accumulation] -- int counts
        r["hot_rejections"] for r in results.values()
    )
    measured_rejections = sum(  # repro: allow[unordered-accumulation] -- int counts
        r["measured_rejections"] for r in results.values()
    )
    rate_limit_ok = limited_rejections >= 1 and measured_rejections == 0
    clean_shutdown = all(clean.values())
    throughput_speedup = (
        by_mode["micro-batch"]["requests_per_s"]
        / by_mode["per-request"]["requests_per_s"]
    )
    meta = {
        "config": cfg.describe(),
        "benchmark": "service",
        "n_train": n_train,
        "n_features": n_features,
        "n_models": n_models,
        "n_trees": n_trees,
        "forest_subsample": forest_subsample,
        "requests": requests,
        "rows_per_request": rows_per_request,
        "clients": clients,
        "hot_requests": hot_requests,
        "batch_wait_ms": batch_wait_ms,
        "seed": seed,
        "artifact_bytes": artifact_bytes,
        "server_args": {m: common_args + a for m, a in modes.items()},
        "throughput_speedup": throughput_speedup,
        "batch_rows_mean": by_mode["micro-batch"]["batch_rows_mean"],
        "limited_tenant_rejections": limited_rejections,
        "limited_tenant_codes": sorted(
            {c for r in results.values() for c in r["hot_rejection_codes"]}
        ),
        "measured_tenant_rejections": measured_rejections,
        "parity_ok": bool(parity_ok),
        "rate_limit_ok": bool(rate_limit_ok),
        "clean_shutdown": bool(clean_shutdown),
        "gates_ok": bool(parity_ok and rate_limit_ok and clean_shutdown),
        "host": _host_meta(),
    }
    return rows_out, meta
