"""Ablation runners for the design choices DESIGN.md calls out.

- A1: JL distortion vs target dimension (the empirical face of Eq. 1);
- A2: cost-predictor validation (the paper's Spearman rho > 0.9 claim);
- A3: scheduler policy comparison (generic / shuffle / LPT / KK /
  discounted-alpha / oracle);
- A4: approximator family comparison (forest / ridge / knn-regressor /
  shallow tree) on proximity detectors.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.config import BenchConfig
from repro.core.cost import CostPredictor, train_cost_predictor
from repro.core.scheduling import (
    bps_schedule,
    generic_schedule,
    lpt_partition,
    shuffle_schedule,
)
from repro.data import load_benchmark, train_test_split
from repro.detectors import KNN, LOF
from repro.metrics import makespan, precision_at_n, roc_auc_score, spearmanr
from repro.projection import JLProjector, JL_FAMILIES
from repro.supervised import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    RandomForestRegressor,
    Ridge,
)
from repro.utils.distances import pairwise_distances

__all__ = [
    "run_jl_distortion",
    "run_cost_predictor_validation",
    "run_scheduler_ablation",
    "run_approximator_ablation",
]


def run_jl_distortion(cfg: BenchConfig, *, d: int = 96, n: int = 300):
    """A1: median/p95 pairwise-distance distortion and projection time
    per JL family across target dimensions k."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((n, d))
    D0 = pairwise_distances(X, metric="sqeuclidean")
    iu = np.triu_indices(n, k=1)
    rows = []
    for frac in (0.25, 0.5, 2.0 / 3.0, 0.9):
        k = max(1, int(frac * d))
        for family in JL_FAMILIES:
            dist_meds, dist_p95s, times = [], [], []
            for trial in range(cfg.trials):
                t0 = time.perf_counter()
                Z = JLProjector(k, family=family, random_state=trial).fit_transform(X)
                times.append(time.perf_counter() - t0)
                D1 = pairwise_distances(Z, metric="sqeuclidean")
                ratio = np.abs(D1[iu] / D0[iu] - 1.0)
                dist_meds.append(np.median(ratio))
                dist_p95s.append(np.quantile(ratio, 0.95))
            rows.append(
                {
                    "k_frac": round(frac, 3),
                    "k": k,
                    "family": family,
                    "median_distortion": float(np.mean(dist_meds)),
                    "p95_distortion": float(np.mean(dist_p95s)),
                    "time_ms": 1000.0 * float(np.mean(times)),
                }
            )
    return rows, {"config": cfg.describe(), "n": n, "d": d}


def run_cost_predictor_validation(cfg: BenchConfig):
    """A2: hold-out rank correlation of the trained cost predictor.

    The paper reports Spearman rho > 0.9 (10-fold CV over 47 datasets);
    we train on local timings and validate on a held-out third.
    """
    _, report = train_cost_predictor(
        families=["KNN", "LOF", "HBOS", "IsolationForest", "CBLOF"],
        n_grid=(150, 400, 800),
        d_grid=(5, 20),
        models_per_family=3,
        # The paper targets the *sum of 10 trials*; summing several
        # trials is what makes millisecond-scale fits predictable at all.
        n_trials=max(3, cfg.trials),
        random_state=0,
    )
    feats, secs = report["features"], report["seconds"]
    rng = np.random.default_rng(1)
    idx = rng.permutation(len(secs))
    cut = len(secs) // 3
    test_idx, train_idx = idx[:cut], idx[cut:]
    pred_model = CostPredictor(n_estimators=100, random_state=0).fit(
        feats[train_idx], secs[train_idx]
    )
    pred = np.expm1(pred_model._rf.predict(feats[test_idx]))
    rho = spearmanr(pred, secs[test_idx])
    rows = [
        {
            "n_timings": len(secs),
            "n_holdout": cut,
            "spearman_rho": float(rho),
            "paper_claim": "rho > 0.9",
        }
    ]
    return rows, {"config": cfg.describe()}


def run_scheduler_ablation(cfg: BenchConfig, *, m: int = 120, t: int = 8):
    """A3: makespan of each scheduling policy on heavy-tailed cost
    distributions, with forecasts perturbed by rank noise (BPS sees
    forecasts; the makespan is evaluated on true costs)."""
    rng = np.random.default_rng(2)
    rows = []
    for dist_name, sampler in (
        ("exponential", lambda: rng.exponential(1.0, m)),
        ("lognormal", lambda: rng.lognormal(0.0, 1.5, m)),
        (
            "bimodal",
            lambda: np.concatenate(
                [rng.uniform(0.1, 0.2, m // 2), rng.uniform(5.0, 10.0, m - m // 2)]
            ),
        ),
    ):
        true_costs = np.sort(sampler())[::-1]  # family-ordered pathology
        noisy_forecast = true_costs * rng.lognormal(0.0, 0.3, m)
        policies = {
            "generic": generic_schedule(m, t),
            "shuffle": shuffle_schedule(m, t, random_state=0),
            "bps_rank": bps_schedule(noisy_forecast, t, alpha=None),
            "bps_disc_a1": bps_schedule(noisy_forecast, t, alpha=1.0),
            "bps_kk": bps_schedule(noisy_forecast, t, method="kk"),
            "oracle_lpt": lpt_partition(true_costs, t),
        }
        lower_bound = max(true_costs.sum() / t, true_costs.max())
        for name, assignment in policies.items():
            span = makespan(true_costs, assignment, t)
            rows.append(
                {
                    "distribution": dist_name,
                    "policy": name,
                    "makespan": float(span),
                    "vs_lower_bound": float(span / lower_bound),
                }
            )
    return rows, {"config": cfg.describe(), "m": m, "t": t}


def run_approximator_ablation(cfg: BenchConfig, *, dataset: str = "Cardio"):
    """A4: which supervised family approximates proximity detectors best
    (test ROC / P@N / prediction time vs the original detector)."""
    from repro.bench.runners import _effective_scale

    X, y = load_benchmark(dataset, scale=_effective_scale(dataset, cfg), random_state=0)
    Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
    k = max(2, min(10, Xtr.shape[0] - 1))
    detectors = {"kNN": KNN(n_neighbors=k), "LOF": LOF(n_neighbors=2 * k)}
    approximators = {
        "forest": RandomForestRegressor(n_estimators=30, random_state=0),
        "shallow_tree": DecisionTreeRegressor(max_depth=4, random_state=0),
        "ridge": Ridge(alpha=1.0),
        "knn_reg": KNeighborsRegressor(n_neighbors=min(5, Xtr.shape[0] - 1)),
    }
    rows = []
    for det_name, det in detectors.items():
        det.fit(Xtr)
        t0 = time.perf_counter()
        s_orig = det.decision_function(Xte)
        t_orig = time.perf_counter() - t0
        rows.append(
            {
                "detector": det_name,
                "approximator": "(original)",
                "roc": roc_auc_score(yte, s_orig),
                "patn": precision_at_n(yte, s_orig),
                "pred_ms": 1000.0 * t_orig,
            }
        )
        for appr_name, proto in approximators.items():
            import copy

            reg = copy.deepcopy(proto)
            reg.fit(Xtr, det.decision_scores_)
            t0 = time.perf_counter()
            s = reg.predict(Xte)
            t_pred = time.perf_counter() - t0
            rows.append(
                {
                    "detector": det_name,
                    "approximator": appr_name,
                    "roc": roc_auc_score(yte, s),
                    "patn": precision_at_n(yte, s),
                    "pred_ms": 1000.0 * t_pred,
                }
            )
    return rows, {"config": cfg.describe(), "dataset": dataset}
