"""Ablation runners for the design choices DESIGN.md calls out.

- A1: JL distortion vs target dimension (the empirical face of Eq. 1);
- A2: cost-predictor validation (the paper's Spearman rho > 0.9 claim);
- A3: scheduler policy comparison (generic / shuffle / LPT / KK /
  discounted-alpha / oracle);
- A4: approximator family comparison (forest / ridge / knn-regressor /
  shallow tree) on proximity detectors.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.config import BenchConfig
from repro.scheduling import (
    CostPredictor,
    bps_schedule,
    get_scheduler,
    list_schedulers,
    lpt_partition,
    train_cost_predictor,
)
from repro.data import load_benchmark, train_test_split
from repro.detectors import KNN, LOF
from repro.metrics import makespan, precision_at_n, roc_auc_score, spearmanr
from repro.projection import JLProjector, JL_FAMILIES
from repro.supervised import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    RandomForestRegressor,
    Ridge,
)
from repro.utils.distances import pairwise_distances

__all__ = [
    "run_jl_distortion",
    "run_cost_predictor_validation",
    "run_scheduler_ablation",
    "run_scheduler_trajectory",
    "run_approximator_ablation",
]


def run_jl_distortion(cfg: BenchConfig, *, d: int = 96, n: int = 300):
    """A1: median/p95 pairwise-distance distortion and projection time
    per JL family across target dimensions k."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((n, d))
    D0 = pairwise_distances(X, metric="sqeuclidean")
    iu = np.triu_indices(n, k=1)
    rows = []
    for frac in (0.25, 0.5, 2.0 / 3.0, 0.9):
        k = max(1, int(frac * d))
        for family in JL_FAMILIES:
            dist_meds, dist_p95s, times = [], [], []
            for trial in range(cfg.trials):
                t0 = time.perf_counter()
                Z = JLProjector(k, family=family, random_state=trial).fit_transform(X)
                times.append(time.perf_counter() - t0)
                D1 = pairwise_distances(Z, metric="sqeuclidean")
                ratio = np.abs(D1[iu] / D0[iu] - 1.0)
                dist_meds.append(np.median(ratio))
                dist_p95s.append(np.quantile(ratio, 0.95))
            rows.append(
                {
                    "k_frac": round(frac, 3),
                    "k": k,
                    "family": family,
                    "median_distortion": float(np.mean(dist_meds)),
                    "p95_distortion": float(np.mean(dist_p95s)),
                    "time_ms": 1000.0 * float(np.mean(times)),
                }
            )
    return rows, {"config": cfg.describe(), "n": n, "d": d}


def run_cost_predictor_validation(cfg: BenchConfig):
    """A2: hold-out rank correlation of the trained cost predictor.

    The paper reports Spearman rho > 0.9 (10-fold CV over 47 datasets);
    we train on local timings and validate on a held-out third.
    """
    _, report = train_cost_predictor(
        families=["KNN", "LOF", "HBOS", "IsolationForest", "CBLOF"],
        n_grid=(150, 400, 800),
        d_grid=(5, 20),
        models_per_family=3,
        # The paper targets the *sum of 10 trials*; summing several
        # trials is what makes millisecond-scale fits predictable at all.
        n_trials=max(3, cfg.trials),
        random_state=0,
    )
    feats, secs = report["features"], report["seconds"]
    rng = np.random.default_rng(1)
    idx = rng.permutation(len(secs))
    cut = len(secs) // 3
    test_idx, train_idx = idx[:cut], idx[cut:]
    pred_model = CostPredictor(n_estimators=100, random_state=0).fit(
        feats[train_idx], secs[train_idx]
    )
    pred = np.expm1(pred_model._rf.predict(feats[test_idx]))
    rho = spearmanr(pred, secs[test_idx])
    rows = [
        {
            "n_timings": len(secs),
            "n_holdout": cut,
            "spearman_rho": float(rho),
            "paper_claim": "rho > 0.9",
        }
    ]
    return rows, {"config": cfg.describe()}


def _seeded_scheduler(name: str):
    """A registry policy instance, seeded when it accepts a seed.

    Capability-probed (not name-matched), so any future stochastic
    policy joining the registry stays reproducible in the ablations —
    the same convention ``SUOD._make_scheduler`` uses.
    """
    try:
        return get_scheduler(name, random_state=0)
    except TypeError:
        return get_scheduler(name)


def _registry_assignments(noisy_forecast: np.ndarray, t: int) -> dict:
    """One assignment per *registered* scheduling policy.

    Iterating the registry instead of a hard-coded list means newly
    registered policies are ablated automatically. Every policy sees
    the same noisy forecast; stochastic policies are seeded for
    reproducible tables.
    """
    m = noisy_forecast.size
    assignments = {}
    for name in list_schedulers():
        scheduler = _seeded_scheduler(name)
        assignments[name] = scheduler.assign(m, t, noisy_forecast)
    return assignments


def run_scheduler_ablation(cfg: BenchConfig, *, m: int = 120, t: int = 8):
    """A3: makespan of every *registered* scheduling policy on
    heavy-tailed cost distributions, with forecasts perturbed by rank
    noise (policies see forecasts; the makespan is evaluated on true
    costs). ``oracle_lpt`` (LPT on the true costs) rides along as the
    reference upper baseline."""
    rng = np.random.default_rng(2)
    rows = []
    for dist_name, sampler in (
        ("exponential", lambda: rng.exponential(1.0, m)),
        ("lognormal", lambda: rng.lognormal(0.0, 1.5, m)),
        (
            "bimodal",
            lambda: np.concatenate(
                [rng.uniform(0.1, 0.2, m // 2), rng.uniform(5.0, 10.0, m - m // 2)]
            ),
        ),
    ):
        true_costs = np.sort(sampler())[::-1]  # family-ordered pathology
        noisy_forecast = true_costs * rng.lognormal(0.0, 0.3, m)
        policies = _registry_assignments(noisy_forecast, t)
        # Reference variants outside the registry: the undiscounted
        # rank-sum objective (raw Eq. 2, alpha=None) and the oracle.
        policies["bps_rank"] = bps_schedule(noisy_forecast, t, alpha=None)
        policies["oracle_lpt"] = lpt_partition(true_costs, t)
        lower_bound = max(true_costs.sum() / t, true_costs.max())
        for name, assignment in policies.items():
            span = makespan(true_costs, assignment, t)
            rows.append(
                {
                    "distribution": dist_name,
                    "policy": name,
                    "makespan": float(span),
                    "vs_lower_bound": float(span / lower_bound),
                }
            )
    return rows, {
        "config": cfg.describe(),
        "m": m,
        "t": t,
        "policies": list_schedulers() + ["bps_rank", "oracle_lpt"],
    }


def run_scheduler_trajectory(
    cfg: BenchConfig,
    *,
    m: int = 40,
    t: int = 4,
    batches: int = 5,
    heavy_fraction: float = 0.75,
):
    """Static-vs-adaptive makespan over consecutive batches (the feedback loop).

    A skewed pool — one task carrying ``heavy_fraction * m`` cost units
    among unit-cost peers — is scheduled from a maximally wrong forecast
    (all tasks look equal) and replayed through the virtual-clock
    work-stealing backend for ``batches`` consecutive rounds. After each
    round every scheduler is offered the batch's measured per-task
    durations (``ExecutionResult.task_times``); static policies ignore
    them, the adaptive policy folds them into its telemetry-refined cost
    model and reschedules. The trajectory shows the gap close: batch 1
    is identical for ``adaptive`` and ``bps-lpt``, by batch 3 the
    adaptive makespan has dropped to the oracle's while the static
    policies stay flat. Deterministic (virtual clock, seeded shuffle).
    """
    from repro.parallel import WorkStealingBackend

    true_costs = np.ones(m)
    true_costs[m - 1] = heavy_fraction * m  # hidden heavy task, last in order
    forecast = np.ones(m)  # the maximally wrong static guess
    backend = WorkStealingBackend(n_workers=t)
    lower_bound = float(max(true_costs.sum() / t, true_costs.max()))
    tasks = [None] * m  # replay mode never calls them

    rows = []
    for name in list_schedulers():
        scheduler = _seeded_scheduler(name)
        for batch in range(1, batches + 1):
            assignment = scheduler.assign(m, t, forecast, task_keys=range(m))
            result = backend.execute(tasks, assignment, known_costs=true_costs)
            scheduler.observe(result.task_times, task_keys=range(m))
            rows.append(
                {
                    "policy": name,
                    "batch": batch,
                    "makespan": float(result.wall_time),
                    "vs_lower_bound": float(result.wall_time / lower_bound),
                    "steals": int(result.total_steals),
                }
            )

    by_policy_batch = {(r["policy"], r["batch"]): r["makespan"] for r in rows}
    meta = {
        "config": cfg.describe(),
        "m": m,
        "t": t,
        "batches": batches,
        "lower_bound": lower_bound,
        "adaptive_batch1": by_policy_batch.get(("adaptive", 1)),
        "adaptive_batch3": by_policy_batch.get(("adaptive", 3)),
        "adaptive_final": by_policy_batch.get(("adaptive", batches)),
        "static_final": by_policy_batch.get(("bps-lpt", batches)),
    }
    return rows, meta


def run_approximator_ablation(cfg: BenchConfig, *, dataset: str = "Cardio"):
    """A4: which supervised family approximates proximity detectors best
    (test ROC / P@N / prediction time vs the original detector)."""
    from repro.bench.runners import _effective_scale

    X, y = load_benchmark(dataset, scale=_effective_scale(dataset, cfg), random_state=0)
    Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
    k = max(2, min(10, Xtr.shape[0] - 1))
    detectors = {"kNN": KNN(n_neighbors=k), "LOF": LOF(n_neighbors=2 * k)}
    approximators = {
        "forest": RandomForestRegressor(n_estimators=30, random_state=0),
        "shallow_tree": DecisionTreeRegressor(max_depth=4, random_state=0),
        "ridge": Ridge(alpha=1.0),
        "knn_reg": KNeighborsRegressor(n_neighbors=min(5, Xtr.shape[0] - 1)),
    }
    rows = []
    for det_name, det in detectors.items():
        det.fit(Xtr)
        t0 = time.perf_counter()
        s_orig = det.decision_function(Xte)
        t_orig = time.perf_counter() - t0
        rows.append(
            {
                "detector": det_name,
                "approximator": "(original)",
                "roc": roc_auc_score(yte, s_orig),
                "patn": precision_at_n(yte, s_orig),
                "pred_ms": 1000.0 * t_orig,
            }
        )
        for appr_name, proto in approximators.items():
            import copy

            reg = copy.deepcopy(proto)
            reg.fit(Xtr, det.decision_scores_)
            t0 = time.perf_counter()
            s = reg.predict(Xte)
            t_pred = time.perf_counter() - t0
            rows.append(
                {
                    "detector": det_name,
                    "approximator": appr_name,
                    "roc": roc_auc_score(yte, s),
                    "patn": precision_at_n(yte, s),
                    "pred_ms": 1000.0 * t_pred,
                }
            )
    return rows, {"config": cfg.describe(), "dataset": dataset}
