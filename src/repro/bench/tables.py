"""Minimal fixed-width text table formatter for benchmark output."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
