"""Export benchmark rows to CSV/JSON for downstream analysis."""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["rows_to_csv", "rows_to_json"]


def rows_to_csv(rows: Sequence[Mapping], path) -> Path:
    """Write dict rows as CSV; the union of keys (first-seen order) is
    the header, missing cells are blank."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def rows_to_json(rows: Sequence[Mapping], path, *, meta: Mapping | None = None) -> Path:
    """Write rows (+ optional metadata, minus unserialisable values) as JSON."""
    path = Path(path)
    clean_meta = {}
    for key, value in (meta or {}).items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        clean_meta[key] = value
    payload = {"meta": clean_meta, "rows": list(rows)}
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path
