"""Benchmark scaling knobs, resolved from the environment.

- ``REPRO_SCALE``   — fraction of each dataset's original sample count
  (default 0.12; 1.0 = paper-sized).
- ``REPRO_MAX_N``   — hard cap on samples per dataset (default 800;
  keeps HTTP's 567k and Shuttle's 49k tractable at any scale).
- ``REPRO_TRIALS``  — independent trials to average (default 2; the
  paper uses 10).
- ``REPRO_MODELS``  — heterogeneous pool size for the full-system table
  (default 30; the paper uses 600).

Every runner stamps the active configuration into its output so measured
numbers are never confused with paper numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchConfig", "get_config"]


@dataclass(frozen=True)
class BenchConfig:
    scale: float = 0.12
    max_n: int = 800
    trials: int = 2
    n_models: int = 30

    def describe(self) -> str:
        return (
            f"scale={self.scale} max_n={self.max_n} trials={self.trials} "
            f"n_models={self.n_models} (paper: scale=1.0, trials=10, models=600)"
        )


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be a number, got {raw!r}") from exc


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an int, got {raw!r}") from exc


def get_config() -> BenchConfig:
    """Resolve the active benchmark configuration from the environment."""
    cfg = BenchConfig(
        scale=_env_float("REPRO_SCALE", BenchConfig.scale),
        max_n=_env_int("REPRO_MAX_N", BenchConfig.max_n),
        trials=_env_int("REPRO_TRIALS", BenchConfig.trials),
        n_models=_env_int("REPRO_MODELS", BenchConfig.n_models),
    )
    if not 0.0 < cfg.scale <= 1.0:
        raise ValueError("REPRO_SCALE must be in (0, 1]")
    if cfg.max_n < 200 or cfg.trials < 1 or cfg.n_models < 1:
        raise ValueError("REPRO_MAX_N >= 200, REPRO_TRIALS >= 1, REPRO_MODELS >= 1")
    return cfg
