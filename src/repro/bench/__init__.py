"""Experiment harness shared by the ``benchmarks/`` suite.

Each paper table/figure has a runner here that generates the workload,
executes the experiment, and returns structured rows; the ``benchmarks/``
files wrap the runners with pytest-benchmark and print paper-style
tables. Scaling knobs come from the environment (see
:mod:`repro.bench.config`) so the same code runs laptop-sized by default
and paper-sized when asked.
"""

from repro.bench.config import BenchConfig, get_config
from repro.bench.tables import format_table
from repro.bench.runners import (
    run_table1_projection,
    run_psa_comparison,
    run_table4_bps,
    run_table5_full_system,
    run_fig3_decision_surface,
    run_claims_case,
    run_dynamic_scheduling,
)

__all__ = [
    "BenchConfig",
    "get_config",
    "format_table",
    "run_table1_projection",
    "run_psa_comparison",
    "run_table4_bps",
    "run_table5_full_system",
    "run_fig3_decision_surface",
    "run_claims_case",
    "run_dynamic_scheduling",
]
