"""Extensions from the paper's future-work list: pool trimming + LSCP.

The SUOD paper closes with two directions this library implements:

1. *"incorporate the emerging automated OD ... to trim down the model
   space for further acceleration"* — `repro.core.trim_pool` drops the
   least consensus-competent half of the pool after a cheap pilot fit;
2. *"demonstrate SUOD's effectiveness ... on more complex downstream
   combination models like unsupervised LSCP"* — `repro.combination.LSCP`
   locally selects the most competent detector per test point.

Pipeline: sample pool -> trim -> SUOD (RP+PSA+BPS) -> LSCP combination.

Run:  python examples/pool_trimming_lscp.py
"""

import time

from repro import SUOD
from repro.combination import LSCP
from repro.core import trim_pool
from repro.data import load_benchmark, train_test_split
from repro.detectors import sample_model_pool
from repro.metrics import roc_auc_score


def main() -> None:
    X, y = load_benchmark("Satellite", scale=0.12)
    Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
    print(f"Satellite replica: train {Xtr.shape}, test {Xte.shape}\n")

    pool = sample_model_pool(24, max_n_neighbors=40, random_state=5)
    print(f"initial heterogeneous pool: {len(pool)} models")

    # -- future-work #4: trim the model space before the expensive fit --
    t0 = time.perf_counter()
    kept, idx = trim_pool(pool, Xtr, keep_fraction=0.5, subsample=300, random_state=0)
    print(
        f"trimmed to {len(kept)} models in {time.perf_counter() - t0:.2f}s "
        "(pilot fit on a 300-sample subsample)"
    )

    # -- the SUOD core: all three acceleration modules -------------------
    clf = SUOD(kept, n_jobs=4, backend="simulated", random_state=0)
    clf.fit(Xtr)
    print(
        f"SUOD fit virtual makespan: {clf.fit_result_.wall_time:.2f}s "
        f"on {clf.n_jobs} workers"
    )

    # -- global average vs future-work #1: LSCP downstream combination --
    global_scores = clf.decision_function(Xte)
    lscp = LSCP(n_neighbors=20, n_select=3).fit(Xtr, clf.train_score_matrix_)
    local_scores = lscp.combine(Xte, clf.decision_function_matrix(Xte))

    print(
        "\nglobal average combination ROC: "
        f"{roc_auc_score(yte, global_scores):.3f}"
    )
    print("LSCP local selection ROC:       " f"{roc_auc_score(yte, local_scores):.3f}")

    chosen = lscp.selected_models(Xte)
    print(
        f"\nLSCP picked {len(set(chosen.ravel().tolist()))} distinct "
        "detectors across the test set — competence is local."
    )
    print(
        "(LSCP trades robustness of the global average for local "
        "adaptivity;\n which wins is dataset-dependent — see the LSCP "
        "paper's discussion.)"
    )


if __name__ == "__main__":
    main()
