"""Quickstart: accelerate a heterogeneous detector pool with SUOD.

Mirrors the paper's Codeblock 1: build a pool of diverse detectors,
wrap it in SUOD with all three modules enabled, fit on unlabeled data,
and score new-coming samples.

Run:  python examples/quickstart.py
"""

from repro import SUOD
from repro.data import load_benchmark, train_test_split
from repro.detectors import ABOD, KNN, LOF, IsolationForest
from repro.metrics import precision_at_n, roc_auc_score
from repro.supervised import RandomForestRegressor


def main() -> None:
    # A scaled-down replica of the Cardio benchmark (see repro.data docs).
    X, y = load_benchmark("Cardio", scale=0.5)
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    print(
        f"train: {X_train.shape}, test: {X_test.shape}, "
        f"outlier rate: {y.mean():.1%}"
    )

    # -- Codeblock 1 of the paper -------------------------------------
    base_estimators = [
        LOF(n_neighbors=40),
        ABOD(n_neighbors=20),
        LOF(n_neighbors=60),
        KNN(n_neighbors=25),
        IsolationForest(n_estimators=100),
    ]
    clf = SUOD(
        base_estimators=base_estimators,
        rp_flag_global=True,                       # random projection
        approx_clf=RandomForestRegressor(n_estimators=40),
        bps_flag=True,                             # balanced scheduling
        approx_flag_global=True,                   # pseudo-supervised approx.
        n_jobs=4,
        backend="simulated",                       # virtual 4-worker cluster
        random_state=42,
        verbose=True,
    )

    clf.fit(X_train)
    test_labels = clf.predict(X_test)
    test_scores = clf.decision_function(X_test)
    # ------------------------------------------------------------------

    print(
        f"\nfit virtual makespan: {clf.fit_result_.wall_time:.3f}s "
        f"across {clf.n_jobs} workers"
    )
    print(f"models projected (RP): {int(clf.rp_flags_.sum())}/{clf.n_models}")
    print(f"models approximated (PSA): {int(clf.approx_flags_.sum())}/{clf.n_models}")
    print(f"flagged outliers in test: {int(test_labels.sum())}/{len(test_labels)}")
    print(f"test ROC-AUC: {roc_auc_score(y_test, test_scores):.3f}")
    print(f"test P@N:     {precision_at_n(y_test, test_scores):.3f}")


if __name__ == "__main__":
    main()
