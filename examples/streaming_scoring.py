"""Streaming scoring driven through the plan API, with persistence.

A deployment-shaped demo of the planner/executor architecture: fit a
heterogeneous SUOD pool once (inspecting the compiled fit plan before
running it), persist the fitted ensemble, reload it, then serve a
stream of scoring requests — each request is a predict
:class:`~repro.pipeline.ExecutionPlan` whose stage reports provide
per-batch telemetry:

- ``batch_size`` splits each request into row chunks, so the scheduling
  unit is (model × chunk) — per-task memory stays bounded and the
  longest task shrinks;
- ``backend="work_stealing"`` lets idle workers steal queued chunks, so
  a mis-forecast model cost degrades throughput gracefully instead of
  stalling a worker.

Chunked scores are bitwise-identical to the sequential path — the demo
verifies that on every batch, against the *reloaded* ensemble.

Run:  python examples/streaming_scoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SUOD, load_ensemble, save_ensemble
from repro.data import make_outlier_dataset
from repro.detectors import HBOS, KNN, LOF, AvgKNN, IsolationForest
from repro.parallel import ExecutionResult
from repro.pipeline import PlanRunner


def make_pool():
    return [
        KNN(n_neighbors=12),
        AvgKNN(n_neighbors=15),
        LOF(n_neighbors=20),
        HBOS(n_bins=20),
        IsolationForest(n_estimators=40, random_state=0),
    ]


def main() -> None:
    X_train, _ = make_outlier_dataset(
        n_samples=1500, n_features=10, contamination=0.1, random_state=0
    )

    engine = SUOD(
        make_pool(),
        n_jobs=4,
        backend="work_stealing",
        batch_size=128,
        approx_flag_global=False,  # keep raw detectors: worst-case costs
        random_state=0,
    )

    # -- compile the fit plan; preview the schedule before training ----
    fit_plan = engine.build_fit_plan(X_train)
    runner = PlanRunner()
    runner.run(fit_plan, until="schedule")
    print("fit plan:", fit_plan)
    print("planned worker loads:", fit_plan.worker_rows())
    runner.run(fit_plan)  # resume the same plan -> the ensemble is fitted
    print(f"fitted {engine.n_models} detectors; fit-plan stage walls:")
    for report in fit_plan.reports:
        print(f"  {report.stage:<12s} {report.wall_time:8.4f}s")

    # -- persist + reload: the served ensemble is the reloaded one -----
    path = Path(tempfile.mkdtemp()) / "streaming_ensemble.pkl"
    save_ensemble(engine, path)
    served = load_ensemble(path)
    print(f"\nensemble round-tripped through {path.name}")

    reference = SUOD(
        make_pool(), n_jobs=1, approx_flag_global=False, random_state=0
    ).fit(X_train)

    rng = np.random.default_rng(42)
    batch_executions = []
    print(
        f"\n{'batch':>5} {'rows':>6} {'latency':>9} {'rows/s':>9} "
        f"{'steals':>7} {'max idle':>9}"
    )
    for batch_id in range(6):
        n_rows = int(rng.integers(300, 900))
        stream = rng.standard_normal((n_rows, X_train.shape[1]))
        plan = served.build_predict_plan(stream)
        runner.run(plan)
        scores = plan.context.scores
        latency = plan.total_wall_time
        telemetry = plan.report_for("execute").execution
        batch_executions.append(plan.merged_execution())
        assert np.array_equal(scores, reference.decision_function(stream)), \
            "chunked scores must match the sequential path bitwise"
        print(
            f"{batch_id:>5} {n_rows:>6} {latency:>8.3f}s "
            f"{n_rows / latency:>9.0f} {telemetry.total_steals:>7} "
            f"{telemetry.idle_times.max():>8.3f}s"
        )

    merged = ExecutionResult.merge(batch_executions)
    print(
        "\ncombined run telemetry (all served batches): "
        f"wall {merged.wall_time:.3f}s, steals {merged.total_steals}, "
        f"idle {merged.idle_times.sum():.3f}s"
    )
    print("every batch verified bitwise-equal to the sequential engine")


if __name__ == "__main__":
    main()
