"""Streaming scoring with chunked work-stealing execution.

A deployment-shaped demo: fit a heterogeneous SUOD pool once, then serve
a stream of scoring requests. Two engine features beyond the paper's
static schedule-then-execute design carry the load:

- ``batch_size`` splits each request into row chunks, so the scheduling
  unit is (model × chunk) — per-task memory stays bounded and the
  longest task shrinks;
- ``backend="work_stealing"`` lets idle workers steal queued chunks, so
  a mis-forecast model cost degrades throughput gracefully instead of
  stalling a worker.

Chunked scores are bitwise-identical to the sequential path — the demo
verifies that on every batch.

Run:  python examples/streaming_scoring.py
"""

import time

import numpy as np

from repro import SUOD
from repro.data import make_outlier_dataset
from repro.detectors import HBOS, KNN, LOF, AvgKNN, IsolationForest


def make_pool():
    return [
        KNN(n_neighbors=12),
        AvgKNN(n_neighbors=15),
        LOF(n_neighbors=20),
        HBOS(n_bins=20),
        IsolationForest(n_estimators=40, random_state=0),
    ]


def main() -> None:
    X_train, _ = make_outlier_dataset(
        n_samples=1500, n_features=10, contamination=0.1, random_state=0
    )

    engine = SUOD(
        make_pool(),
        n_jobs=4,
        backend="work_stealing",
        batch_size=128,
        approx_flag_global=False,  # keep raw detectors: worst-case costs
        random_state=0,
    ).fit(X_train)
    reference = SUOD(
        make_pool(), n_jobs=1, approx_flag_global=False, random_state=0
    ).fit(X_train)
    print(engine)
    print(f"fitted pool of {engine.n_models} detectors on "
          f"{X_train.shape[0]}x{X_train.shape[1]} train data\n")

    rng = np.random.default_rng(42)
    print(f"{'batch':>5} {'rows':>6} {'latency':>9} {'rows/s':>9} "
          f"{'steals':>7} {'max idle':>9}")
    for batch_id in range(6):
        n_rows = int(rng.integers(300, 900))
        stream = rng.standard_normal((n_rows, X_train.shape[1]))
        t0 = time.perf_counter()
        scores = engine.decision_function(stream)
        latency = time.perf_counter() - t0
        telemetry = engine.predict_result_
        assert np.array_equal(scores, reference.decision_function(stream)), \
            "chunked scores must match the sequential path bitwise"
        print(
            f"{batch_id:>5} {n_rows:>6} {latency:>8.3f}s "
            f"{n_rows / latency:>9.0f} {telemetry.total_steals:>7} "
            f"{telemetry.idle_times.max():>8.3f}s"
        )
    print("\nevery batch verified bitwise-equal to the sequential engine")


if __name__ == "__main__":
    main()
