"""Random projection for high-dimensional OD (§3.3, Table 1).

Compares the seven compression methods of Table 1 on a wide dataset
replica (MNIST, d = 100): execution time and detection quality of a kNN
detector trained in each compressed space, plus the diversity argument —
JL projections give every ensemble member its own subspace, PCA gives
all members the same one.

Run:  python examples/high_dimensional_rp.py
"""

import time

from repro.data import load_benchmark
from repro.detectors import KNN
from repro.metrics import roc_auc_score, spearmanr
from repro.projection import PROJECTION_METHODS, jl_target_dim, make_projector


def main() -> None:
    X, y = load_benchmark("MNIST", scale=0.12)
    n, d = X.shape
    k = jl_target_dim(d)  # the paper's 2d/3 compression target
    print(f"MNIST replica: n={n}, d={d}; projecting to k={k} (33% compression)\n")

    header = f"{'method':10s} {'time':>7s} {'roc':>6s}"
    print(header)
    print("-" * len(header))
    for method in PROJECTION_METHODS:
        t0 = time.perf_counter()
        Z = make_projector(method, k, random_state=0).fit(X).transform(X)
        det = KNN(n_neighbors=10).fit(Z)
        elapsed = time.perf_counter() - t0
        auc = roc_auc_score(y, det.decision_scores_)
        print(f"{method:10s} {elapsed:6.2f}s {auc:6.3f}")

    # Diversity: score correlation between two ensemble members using the
    # same method with different seeds. Deterministic PCA -> identical
    # subspaces -> perfectly correlated members (no ensemble diversity);
    # JL projections decorrelate them (§2.2's critique of PCA).
    print("\nmember-to-member score correlation (lower = more diversity):")
    for method in ("PCA", "toeplitz", "basic"):
        scores = []
        for seed in (0, 1):
            Z = make_projector(method, k, random_state=seed).fit(X).transform(X)
            scores.append(KNN(n_neighbors=10).fit(Z).decision_scores_)
        rho = spearmanr(scores[0], scores[1])
        print(f"  {method:10s} rho = {rho:.3f}")


if __name__ == "__main__":
    main()
