"""Pseudo-supervised approximation for fast scoring (§3.4, Fig. 3).

Shows the PSA trade on a stream of new-coming samples: a kNN detector's
per-query cost grows with the training-set size, while its random forest
approximator's cost depends only on tree count and depth — with near
identical rankings (and sometimes better generalisation, the paper's
"regularization effect").

Run:  python examples/fast_prediction_psa.py
"""

import time

from repro.core.approximation import Approximator
from repro.data import load_benchmark, train_test_split
from repro.detectors import KNN, LOF
from repro.metrics import roc_auc_score, spearmanr
from repro.supervised import RandomForestRegressor


def main() -> None:
    X, y = load_benchmark("Annthyroid", scale=0.15)
    Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=0)
    print(f"train {Xtr.shape}, scoring stream of {Xte.shape[0]} new samples\n")

    for det in (KNN(n_neighbors=10), LOF(n_neighbors=20)):
        name = type(det).__name__
        det.fit(Xtr)

        approx = Approximator(
            det, RandomForestRegressor(n_estimators=40, max_depth=10, random_state=0)
        ).fit(Xtr)

        t0 = time.perf_counter()
        s_orig = det.decision_function(Xte)
        t_orig = time.perf_counter() - t0

        t0 = time.perf_counter()
        s_appr = approx.decision_function(Xte)
        t_appr = time.perf_counter() - t0

        print(f"{name}:")
        print(
            f"  original  : {1000 * t_orig:7.1f} ms  "
            f"ROC {roc_auc_score(yte, s_orig):.3f}"
        )
        print(
            f"  PSA forest: {1000 * t_appr:7.1f} ms  "
            f"ROC {roc_auc_score(yte, s_appr):.3f}  "
            f"(rank agreement rho = {spearmanr(s_orig, s_appr):.3f})"
        )
        speedup = t_orig / max(t_appr, 1e-9)
        print(f"  prediction speedup: {speedup:.1f}x\n")

    print(
        "note: PSA only replaces *costly* models — HBOS or iForest would "
        "gain nothing\n(their prediction is already cheaper than any "
        "approximator; see repro.detectors.is_costly)."
    )


if __name__ == "__main__":
    main()
