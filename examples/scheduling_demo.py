"""Balanced parallel scheduling walkthrough (Fig. 2 and §3.5).

Recreates the paper's motivating example: 100 heterogeneous models from
{kNN, Isolation Forest, HBOS, OCSVM} — 25 each, ordered by family, as a
parameter-grid loop would produce them. A generic dispatcher sends all
25 kNNs to worker 1 and stalls the system; BPS forecasts costs and
balances the rank sums (the Fig. 2 flowchart), approaching the ideal
makespan.

Run:  python examples/scheduling_demo.py
"""

import time

import numpy as np

from repro.scheduling import (
    AnalyticCostModel,
    bps_schedule,
    generic_schedule,
    shuffle_schedule,
)
from repro.data import load_benchmark
from repro.detectors import sample_model_pool
from repro.metrics import imbalance, makespan, spearmanr


def main() -> None:
    X, _ = load_benchmark("PageBlock", scale=0.15)
    print(f"dataset: PageBlock replica, n={X.shape[0]}, d={X.shape[1]}")

    # 25 models per family, ordered by family (the §3.5 pathology).
    pool = []
    for fam in ("KNN", "IsolationForest", "HBOS", "OCSVM"):
        pool.extend(
            sample_model_pool(
                25,
                families=[fam],
                max_n_neighbors=100,
                random_state=hash(fam) % 2**31,
            )
        )
    print(f"pool: {len(pool)} heterogeneous models, family-ordered\n")

    # Measure the true cost of each model once on this machine.
    print("measuring true per-model fit costs on one core ...")
    true_costs = np.empty(len(pool))
    for i, model in enumerate(pool):
        t0 = time.perf_counter()
        model.fit(X)
        true_costs[i] = time.perf_counter() - t0
    print(f"total sequential fit time: {true_costs.sum():.2f}s")

    # Forecast costs the way SUOD does before fitting anything.
    forecast = AnalyticCostModel().forecast(pool, X)
    rho = spearmanr(forecast, true_costs)
    print(f"forecast vs true cost rank correlation (Spearman): {rho:.3f}\n")

    t = 4
    schedules = {
        "generic (contiguous by order)": generic_schedule(len(pool), t),
        "random shuffle": shuffle_schedule(len(pool), t, random_state=0),
        "BPS (forecast rank sums)": bps_schedule(forecast, t),
    }
    ideal = true_costs.sum() / t
    print(
        f"replaying measured costs through {t} virtual workers "
        f"(ideal makespan = {ideal:.2f}s):\n"
    )
    header = f"{'policy':32s} {'makespan':>9s} {'imbalance':>10s}  per-worker loads"
    print(header)
    print("-" * len(header))
    for name, assignment in schedules.items():
        loads = np.bincount(assignment, weights=true_costs, minlength=t)
        span = makespan(true_costs, assignment, t)
        imb = imbalance(true_costs, assignment, t)
        loads_str = " ".join(f"{v:5.2f}" for v in loads)
        print(f"{name:32s} {span:8.2f}s {imb:9.1%}  [{loads_str}]")

    gen = makespan(true_costs, schedules["generic (contiguous by order)"], t)
    bps = makespan(true_costs, schedules["BPS (forecast rank sums)"], t)
    print(
        f"\nBPS time reduction vs generic: {100 * (gen - bps) / gen:.1f}% "
        "(the paper reports up to 61%, Table 4)"
    )

    # Beyond the paper: the adaptive policy closes the forecast gap by
    # folding each batch's *measured* durations back into its cost model
    # — consecutive batches are rescheduled on reality, not guesses.
    from repro.scheduling import get_scheduler

    adaptive = get_scheduler("adaptive", smoothing=1.0)
    print("\nadaptive rescheduling over consecutive batches:")
    for batch in range(1, 4):
        assignment = adaptive.assign(len(pool), t, forecast, task_keys=range(len(pool)))
        span = makespan(true_costs, assignment, t)
        print(
            f"  batch {batch}: makespan {span:6.2f}s "
            f"(observed tasks: {adaptive.n_observed})"
        )
        # In SUOD this observe happens automatically from
        # ExecutionResult.task_times after every execute stage.
        adaptive.observe(true_costs, task_keys=range(len(pool)))
    print(f"  ideal: {ideal:8.2f}s")


if __name__ == "__main__":
    main()
