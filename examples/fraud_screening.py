"""Fraudulent-claim screening: the paper's §4.5 deployment scenario.

A first-round screening system for a special investigation unit (SIU):
a heterogeneous pool scores pharmacy claims by outlyingness, the top
fraction is escalated to human investigators, and SUOD's acceleration
modules keep both (re)training and scoring fast.

Run:  python examples/fraud_screening.py
"""

import time

import numpy as np

from repro import SUOD
from repro.data import make_claims_dataset, train_test_split
from repro.data.claims import CLAIMS_FEATURE_NAMES
from repro.detectors import sample_model_pool
from repro.metrics import precision_at_n, roc_auc_score
from repro.supervised import RandomForestRegressor


def main() -> None:
    # Synthetic stand-in for the proprietary IQVIA table: 35 features,
    # 15.38% fraud (scaled from 123,720 to 6,000 claims for the demo).
    X, y = make_claims_dataset(6000, random_state=7)
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    print(f"claims: {X.shape[0]}, features: {X.shape[1]}, fraud: {y.mean():.2%}")

    # "The current system in use is based on a group of selected
    # detection models" — sample a heterogeneous pool from Table B.1.
    pool = sample_model_pool(
        20,
        families=["KNN", "LOF", "HBOS", "IsolationForest", "CBLOF"],
        max_n_neighbors=60,
        random_state=1,
    )

    results = {}
    for label, flags in (
        (
            "current system (no acceleration)",
            dict(rp_flag_global=False, approx_flag_global=False, bps_flag=False),
        ),
        (
            "SUOD (all modules)",
            dict(rp_flag_global=True, approx_flag_global=True, bps_flag=True),
        ),
    ):
        clf = SUOD(
            [type(m)(**m.get_params()) for m in pool],  # fresh copies
            n_jobs=10,
            backend="simulated",
            approx_clf=RandomForestRegressor(
                n_estimators=30, max_depth=10, random_state=0
            ),
            random_state=0,
            **flags,
        )
        clf.fit(X_train)
        t0 = time.perf_counter()
        scores = clf.decision_function(X_test)
        score_wall = time.perf_counter() - t0
        results[label] = (clf.fit_result_.wall_time, score_wall, scores, clf)
        print(f"\n{label}")
        print(f"  fit (10 virtual workers): {clf.fit_result_.wall_time:.2f}s")
        print(f"  scoring {X_test.shape[0]} new claims: {score_wall:.2f}s")
        print(
            f"  ROC-AUC: {roc_auc_score(y_test, scores):.3f}  "
            f"P@N: {precision_at_n(y_test, scores):.3f}"
        )

    # SIU escalation report: the top 1% riskiest claims.
    _, _, scores, clf = results["SUOD (all modules)"]
    n_escalate = max(1, len(scores) // 100)
    top = np.argsort(-scores)[:n_escalate]
    hit_rate = y_test[top].mean()
    print(
        f"\nescalating top {n_escalate} claims to SIU; "
        f"{hit_rate:.0%} are labelled fraud in this synthetic ground truth"
    )

    # Interpretability bonus of PSA (Remark 1): a forest approximator
    # exposes feature importances for investigator triage. Train it on
    # the *original* feature space (SUOD's internal approximators live in
    # each model's projected space, whose axes are not named claims
    # features).
    detector = clf.base_estimators_[0]
    explainer = RandomForestRegressor(n_estimators=40, random_state=0)
    from repro.detectors import KNN

    raw_det = KNN(n_neighbors=20).fit(X_train)
    explainer.fit(X_train, raw_det.decision_scores_)
    importances = explainer.feature_importances_
    top_features = np.argsort(-importances)[:5]
    print("\ntop suspicious-score drivers (kNN approximator on raw features):")
    for i in top_features:
        print(f"  {CLAIMS_FEATURE_NAMES[i]:20s} importance={importances[i]:.3f}")


if __name__ == "__main__":
    main()
